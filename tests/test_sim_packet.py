"""Packet simulator: hand-computed latencies, queueing, drops, conservation."""

import pytest

from repro.routing.base import Route
from repro.sim.packet import PacketSimConfig, PacketSimulator
from repro.sim.traffic import Flow
from repro.topology.graph import Network


def _pair(capacity=1.0) -> Network:
    net = Network("pair")
    net.add_server("a", ports=1)
    net.add_server("b", ports=1)
    net.add_link("a", "b", capacity=capacity)
    return net


def _route_ab() -> Route:
    return Route.of(["a", "b"])


class TestConfigValidation:
    def test_bad_values(self):
        with pytest.raises(ValueError):
            PacketSimConfig(packet_size=0)
        with pytest.raises(ValueError):
            PacketSimConfig(propagation_delay=-1)
        with pytest.raises(ValueError):
            PacketSimConfig(queue_capacity=0)

    def test_serialisation_time(self):
        config = PacketSimConfig(packet_size=2.0, link_capacity=4.0)
        assert config.serialisation_time == pytest.approx(0.5)


class TestSinglePacket:
    def test_latency_formula(self):
        """One hop: latency = serialisation + propagation (+ switching)."""
        config = PacketSimConfig(propagation_delay=0.25, switching_delay=0.1)
        sim = PacketSimulator(_pair(), config)
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": _route_ab()},
            packets_per_flow=1,
            mean_interarrival=1.0,
            seed=0,
        )
        assert result.delivered == 1
        assert result.latencies[0] == pytest.approx(0.1 + 1.0 + 0.25)

    def test_multi_hop_latency(self, tiny_net):
        config = PacketSimConfig(propagation_delay=0.0)
        sim = PacketSimulator(tiny_net, config)
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": Route.of(["a", "sw", "b"])},
            packets_per_flow=1,
            seed=0,
        )
        assert result.latencies[0] == pytest.approx(2.0)  # two serialisations


class TestQueueing:
    def test_back_to_back_packets_queue(self):
        """Two packets injected (nearly) together: the second waits one
        serialisation time behind the first."""
        config = PacketSimConfig(propagation_delay=0.0)
        net = _pair()
        sim = PacketSimulator(net, config)
        # Tiny interarrival -> both arrive before the first finishes.
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": _route_ab()},
            packets_per_flow=2,
            mean_interarrival=1e-9,
            seed=1,
        )
        assert result.delivered == 2
        first, second = sorted(result.latencies)
        assert second - first == pytest.approx(1.0, abs=1e-6)

    def test_drops_when_queue_full(self):
        config = PacketSimConfig(propagation_delay=0.0, queue_capacity=1)
        sim = PacketSimulator(_pair(), config)
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": _route_ab()},
            packets_per_flow=50,
            mean_interarrival=1e-6,  # burst far beyond the queue
            seed=2,
        )
        assert result.dropped > 0
        assert result.delivered + result.dropped == result.offered

    def test_no_drops_at_low_load(self):
        sim = PacketSimulator(_pair())
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": _route_ab()},
            packets_per_flow=20,
            mean_interarrival=10.0,
            seed=3,
        )
        assert result.dropped == 0
        assert result.delivery_ratio == 1.0


class TestDeterminismAndAccounting:
    def test_seeded_runs_identical(self, abccc_small):
        spec, net = abccc_small
        from repro.sim.traffic import permutation_traffic
        from repro.sim.flow import route_all

        flows = permutation_traffic(net.servers, seed=4)
        routes = route_all(net, flows, spec.route)

        def run_once():
            sim = PacketSimulator(net)
            return sim.run(flows, routes, packets_per_flow=5, seed=7)

        a, b = run_once(), run_once()
        assert a.latencies == b.latencies
        assert a.dropped == b.dropped

    def test_conservation(self, abccc_small):
        spec, net = abccc_small
        from repro.sim.traffic import permutation_traffic
        from repro.sim.flow import route_all

        flows = permutation_traffic(net.servers, seed=5)
        routes = route_all(net, flows, spec.route)
        sim = PacketSimulator(net, PacketSimConfig(queue_capacity=2))
        result = sim.run(flows, routes, packets_per_flow=10, mean_interarrival=0.5, seed=8)
        assert result.delivered + result.dropped == result.offered
        assert result.offered == len(flows) * 10

    def test_route_over_dead_link_rejected(self):
        net = _pair()
        sim = PacketSimulator(net)
        bad = Route.of(["b", "a"])
        net.remove_link("a", "b")
        with pytest.raises(ValueError, match="non-existent link"):
            sim.run([Flow("f", "b", "a")], {"f": bad}, packets_per_flow=1)
        # error surfaces at injection time inside the event loop

    def test_zero_hop_route_rejected(self):
        sim = PacketSimulator(_pair())
        with pytest.raises(ValueError, match="zero-hop"):
            sim.run([Flow("f", "a", "b")], {"f": Route.of(["a"])}, packets_per_flow=1)


class TestMultipathSpraying:
    def _two_path_net(self):
        from repro.topology.graph import Network

        net = Network()
        net.add_server("a", ports=2)
        net.add_server("b", ports=2)
        net.add_switch("w1", ports=2)
        net.add_switch("w2", ports=2)
        net.add_link("a", "w1")
        net.add_link("w1", "b")
        net.add_link("a", "w2")
        net.add_link("w2", "b")
        return net

    def test_round_robin_uses_both_paths(self):
        net = self._two_path_net()
        paths = [Route.of(["a", "w1", "b"]), Route.of(["a", "w2", "b"])]
        sim = PacketSimulator(net, PacketSimConfig(propagation_delay=0.0))
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": paths},
            packets_per_flow=40,
            mean_interarrival=0.25,  # enough pressure to queue on one path
            seed=1,
        )
        # With both paths the flow sustains ~2x one link's capacity; a
        # single path at this load must queue and drop/slow.
        single = PacketSimulator(net, PacketSimConfig(propagation_delay=0.0))
        baseline = single.run(
            [Flow("f", "a", "b")],
            {"f": paths[0]},
            packets_per_flow=40,
            mean_interarrival=0.25,
            seed=1,
        )
        assert result.mean_latency < baseline.mean_latency

    def test_spraying_causes_reordering_under_asymmetry(self):
        """Make one path much longer: spraying must deliver out of order."""
        from repro.topology.graph import Network

        net = Network()
        net.add_server("a", ports=2)
        net.add_server("b", ports=2)
        net.add_switch("w1", ports=2)
        for i in range(3):
            net.add_switch(f"x{i}", ports=2)
        net.add_server("mid", ports=2)
        net.add_link("a", "w1")
        net.add_link("w1", "b")
        # long path: a - x0 - mid - x1 - b
        net.add_link("a", "x0")
        net.add_link("x0", "mid")
        net.add_link("mid", "x1")
        net.add_link("x1", "b")
        short = Route.of(["a", "w1", "b"])
        long = Route.of(["a", "x0", "mid", "x1", "b"])
        sim = PacketSimulator(net, PacketSimConfig(propagation_delay=0.0))
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": [long, short]},
            packets_per_flow=20,
            mean_interarrival=0.2,
            seed=2,
        )
        assert result.reordered > 0
        assert 0 < result.reorder_ratio <= 1

    def test_single_path_never_reorders(self, abccc_small):
        spec, net = abccc_small
        from repro.sim.traffic import permutation_traffic
        from repro.sim.flow import route_all

        flows = permutation_traffic(net.servers, seed=6)
        routes = route_all(net, flows, spec.route)
        sim = PacketSimulator(net)
        result = sim.run(flows, routes, packets_per_flow=10, seed=3)
        assert result.reordered == 0

    def test_rotation_spray_on_abccc(self, abccc_small):
        """Spraying a flow over its rotation family: valid, delivers."""
        from repro.core import rotation_routes
        from repro.core.address import ServerAddress

        spec, net = abccc_small
        src, dst = "s0.0/0", "s2.2/1"
        paths = rotation_routes(
            spec.abccc, ServerAddress.parse(src), ServerAddress.parse(dst)
        )
        assert len(paths) >= 2
        sim = PacketSimulator(net)
        result = sim.run(
            [Flow("f", src, dst)],
            {"f": paths},
            packets_per_flow=30,
            mean_interarrival=0.5,
            seed=4,
            spray="random",
        )
        assert result.delivered == 30

    def test_bad_spray_policy(self, tiny_net):
        sim = PacketSimulator(tiny_net)
        with pytest.raises(ValueError, match="spray"):
            sim.run([Flow("f", "a", "b")], {"f": Route.of(["a", "sw", "b"])},
                    packets_per_flow=1, spray="zigzag")

    def test_empty_path_list_rejected(self, tiny_net):
        sim = PacketSimulator(tiny_net)
        with pytest.raises(ValueError, match="no routes"):
            sim.run([Flow("f", "a", "b")], {"f": []}, packets_per_flow=1)


class TestResultStats:
    def test_percentile_and_throughput(self):
        sim = PacketSimulator(_pair())
        result = sim.run(
            [Flow("f", "a", "b")],
            {"f": _route_ab()},
            packets_per_flow=100,
            mean_interarrival=2.0,
            seed=9,
        )
        assert result.p99_latency >= result.mean_latency * 0.5
        assert result.throughput > 0
