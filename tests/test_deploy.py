"""Deployment manifests and expansion work orders."""

import pytest

from repro.core import AbcccSpec, plan_abccc_growth, plan_bcube_growth
from repro.baselines import BcubeSpec
from repro.deploy import (
    build_manifest,
    expansion_work_orders,
    render_work_orders,
)
from repro.metrics.layout import LayoutConfig


class TestManifest:
    def test_covers_everything(self):
        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        manifest = build_manifest(net, LayoutConfig(rack_capacity=6))
        assert sum(len(b.servers) for b in manifest.racks) == net.num_servers
        assert sum(len(b.switches) for b in manifest.racks) == net.num_switches
        assert len(manifest.cables) == net.num_links

    def test_cable_lengths_consistent_with_layout(self):
        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        config = LayoutConfig(rack_capacity=6)
        manifest = build_manifest(net, config)
        for cable in manifest.cables:
            assert cable.length == config.cable_length(cable.rack_u, cable.rack_v)
            assert cable.intra_rack == (cable.rack_u == cable.rack_v)

    def test_render_mentions_counts(self):
        spec = AbcccSpec(2, 1, 2)
        manifest = build_manifest(spec.build())
        text = manifest.render()
        assert "racks" in text
        assert "cables" in text


class TestWorkOrders:
    def test_pure_addition_has_no_disruptive_phase(self):
        plan = plan_abccc_growth(3, 1, 2)
        new_net = AbcccSpec(3, 2, 2).build()
        orders = expansion_work_orders(plan, new_net)
        assert [o.phase for o in orders] == [1, 2, 3]
        assert not any(o.disruptive for o in orders)

    def test_order_item_counts_match_plan(self):
        plan = plan_abccc_growth(3, 1, 2)
        new_net = AbcccSpec(3, 2, 2).build()
        orders = {o.phase: o for o in expansion_work_orders(plan, new_net)}
        assert orders[1].size == len(plan.new_switches)
        assert orders[2].size == len(plan.new_servers)
        assert orders[3].size == len(plan.new_links)

    def test_bcube_growth_is_disruptive(self):
        plan = plan_bcube_growth(3, 1)
        new_net = BcubeSpec(3, 2).build()
        orders = expansion_work_orders(plan, new_net)
        disruptive = [o for o in orders if o.disruptive]
        assert len(disruptive) == 1
        assert disruptive[0].phase == 4
        assert disruptive[0].size == len(plan.upgraded_servers)
        assert all("add NIC" in item for item in disruptive[0].items)

    def test_cables_sorted_intra_rack_first(self):
        plan = plan_abccc_growth(3, 1, 2)
        new_net = AbcccSpec(3, 2, 2).build()
        config = LayoutConfig(rack_capacity=9)
        orders = {o.phase: o for o in expansion_work_orders(plan, new_net, config)}
        from repro.metrics.layout import assign_racks

        racks = assign_racks(new_net, config)

        def is_intra(item: str) -> bool:
            u, _, v = item.partition(" <-> ")
            return racks[u] == racks[v]

        flags = [is_intra(item) for item in orders[3].items]
        # once we leave the intra-rack block we never return
        assert flags == sorted(flags, reverse=True)

    def test_render(self):
        plan = plan_bcube_growth(2, 1)
        new_net = BcubeSpec(2, 2).build()
        text = render_work_orders(expansion_work_orders(plan, new_net))
        assert "phase 1" in text
        assert "DISRUPTIVE" in text

    def test_render_empty(self):
        assert render_work_orders([]) == "nothing to do"
