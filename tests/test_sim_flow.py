"""Max-min fair allocation: hand-checked cases and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.base import Route
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.traffic import Flow, permutation_traffic
from repro.topology.graph import Network


def _line(capacities) -> Network:
    """s0 - s1 - ... direct chain with given link capacities."""
    net = Network("line")
    for i in range(len(capacities) + 1):
        net.add_server(f"s{i}", ports=4)
    for i, cap in enumerate(capacities):
        net.add_link(f"s{i}", f"s{i+1}", capacity=cap)
    return net


class TestHandCases:
    def test_two_flows_share_one_link(self):
        net = _line([1.0])
        flows = [Flow("f1", "s0", "s1"), Flow("f2", "s0", "s1")]
        routes = {f.flow_id: Route.of(["s0", "s1"]) for f in flows}
        allocation = max_min_allocation(net, flows, routes)
        assert allocation.rates["f1"] == pytest.approx(0.5)
        assert allocation.rates["f2"] == pytest.approx(0.5)
        assert allocation.jain_fairness == pytest.approx(1.0)

    def test_classic_two_bottleneck_example(self):
        """Flows: A over links 1+2, B over link 1, C over link 2; caps 1.
        Max-min: A = B = C = 0.5?  No — the classic result is A = 0.5 on
        whichever saturates first... with equal caps both links saturate
        together: A = B = C = 0.5."""
        net = _line([1.0, 1.0])
        flows = [Flow("A", "s0", "s2"), Flow("B", "s0", "s1"), Flow("C", "s1", "s2")]
        routes = {
            "A": Route.of(["s0", "s1", "s2"]),
            "B": Route.of(["s0", "s1"]),
            "C": Route.of(["s1", "s2"]),
        }
        allocation = max_min_allocation(net, flows, routes)
        for rate in allocation.rates.values():
            assert rate == pytest.approx(0.5)

    def test_asymmetric_bottlenecks(self):
        """Same demands but link 2 has capacity 2: after link 1 freezes
        A and B at 0.5, C continues to 1.5."""
        net = _line([1.0, 2.0])
        flows = [Flow("A", "s0", "s2"), Flow("B", "s0", "s1"), Flow("C", "s1", "s2")]
        routes = {
            "A": Route.of(["s0", "s1", "s2"]),
            "B": Route.of(["s0", "s1"]),
            "C": Route.of(["s1", "s2"]),
        }
        allocation = max_min_allocation(net, flows, routes)
        assert allocation.rates["A"] == pytest.approx(0.5)
        assert allocation.rates["B"] == pytest.approx(0.5)
        assert allocation.rates["C"] == pytest.approx(1.5)
        assert allocation.bottlenecks["C"] == ("s1", "s2")

    def test_lone_flow_gets_full_capacity(self):
        net = _line([3.0])
        flows = [Flow("f", "s0", "s1")]
        routes = {"f": Route.of(["s0", "s1"])}
        allocation = max_min_allocation(net, flows, routes)
        assert allocation.rates["f"] == pytest.approx(3.0)


class TestInvariants:
    def _abccc_allocation(self, seed):
        from repro.core import AbcccSpec

        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        flows = permutation_traffic(net.servers, seed=seed)
        routes = route_all(net, flows, spec.route)
        return net, flows, routes, max_min_allocation(net, flows, routes)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasibility(self, seed):
        """No link carries more than its capacity."""
        net, flows, routes, allocation = self._abccc_allocation(seed)
        from repro.topology.node import link_key

        loads = {}
        for flow in flows:
            rate = allocation.rates[flow.flow_id]
            for u, v in routes[flow.flow_id].edges():
                key = link_key(u, v)
                loads[key] = loads.get(key, 0.0) + rate
        for key, load in loads.items():
            assert load <= net.link(*key).capacity + 1e-9

    @pytest.mark.parametrize("seed", [0, 1])
    def test_bottleneck_property(self, seed):
        """Every flow's recorded bottleneck link is saturated, and the flow
        has the maximal rate among that link's flows (the defining
        property of max-min fairness)."""
        net, flows, routes, allocation = self._abccc_allocation(seed)
        from repro.topology.node import link_key

        link_rates = {}
        for flow in flows:
            for u, v in routes[flow.flow_id].edges():
                link_rates.setdefault(link_key(u, v), []).append(
                    allocation.rates[flow.flow_id]
                )
        for flow in flows:
            bottleneck = allocation.bottlenecks[flow.flow_id]
            rates = link_rates[bottleneck]
            assert sum(rates) == pytest.approx(net.link(*bottleneck).capacity)
            assert allocation.rates[flow.flow_id] == pytest.approx(max(rates))

    def test_every_flow_rated(self):
        _, flows, _, allocation = self._abccc_allocation(3)
        assert set(allocation.rates) == {f.flow_id for f in flows}
        assert allocation.min_rate > 0


class TestValidation:
    def test_route_endpoint_mismatch(self):
        net = _line([1.0])
        flows = [Flow("f", "s0", "s1")]
        routes = {"f": Route.of(["s1", "s0"])}
        with pytest.raises(ValueError, match="flow wants"):
            max_min_allocation(net, flows, routes)

    def test_missing_route(self):
        net = _line([1.0])
        flows = [Flow("f", "s0", "s1")]
        with pytest.raises(KeyError):
            max_min_allocation(net, flows, {})


class TestRouteAll:
    def test_plain_router(self):
        from repro.routing.shortest import bfs_path

        net = _line([1.0, 1.0])
        flows = [Flow("f", "s0", "s2")]
        routes = route_all(net, flows, bfs_path)
        assert routes["f"].destination == "s2"

    def test_flow_id_aware_router(self):
        seen = []

        def router(net, src, dst, flow_id=""):
            seen.append(flow_id)
            return Route.of([src, dst])

        net = _line([1.0])
        flows = [Flow("f9", "s0", "s1")]
        route_all(net, flows, router)
        assert seen == ["f9"]


class TestAllocationStats:
    def test_aggregate_and_extremes(self):
        net = _line([1.0])
        flows = [Flow("f1", "s0", "s1"), Flow("f2", "s0", "s1")]
        routes = {f.flow_id: Route.of(["s0", "s1"]) for f in flows}
        allocation = max_min_allocation(net, flows, routes)
        assert allocation.aggregate_throughput == pytest.approx(1.0)
        assert allocation.min_rate == allocation.max_rate == pytest.approx(0.5)
        assert allocation.mean_rate == pytest.approx(0.5)
        assert allocation.num_flows == 2
