"""Graph-native sweep engine: parity, kernels, sampling, masking.

The contracts under test:

* ``sweep_graph_distance_stats(compile_graph(net))`` ==
  ``sweep_distance_stats(net)`` == the legacy dict-BFS reference —
  field for field, exact and sampled.
* All three BFS kernels (bitpack / dense / flat) produce identical
  ``DistanceStats``, including the sampled-mean confidence interval.
* Index-based source sampling draws the same sources as the legacy
  name-based sampling for any seed (``random.Random(seed).sample``
  over positions vs over the name list).
* Fast-built graphs (no ``Network``) sweep to the same stats as the
  object path.
* ``MaskedGraph.sweep_view()`` reproduces compile-the-subgraph stats.
* Parallel sweeps hand the graph to workers through shared memory and
  release every segment, even when the pool degrades.
"""

from __future__ import annotations

import warnings

import pytest

from repro.baselines import DcellSpec, FiconnSpec
from repro.core import AbcccSpec
from repro.faults import FailureScenario, MaskedGraph
from repro.metrics.distance import legacy_link_hop_stats
from repro.metrics.engine import (
    PARALLEL_THRESHOLD,
    SWEEP_KERNELS,
    resolve_kernel,
    sweep_distance_stats,
    sweep_graph_distance_stats,
    pairwise_distances,
)
from repro.topology import shm
from repro.topology.compiled import (
    HAVE_NUMPY,
    HAVE_SCIPY,
    CSRGraphView,
    compile_graph,
)

KERNELS = ("bitpack", "dense", "flat")


def assert_identical(got, want, ci: bool = False):
    assert got.diameter == want.diameter
    assert got.mean == want.mean
    assert got.histogram == want.histogram
    assert got.pairs == want.pairs
    assert got.exact == want.exact
    if ci:
        assert got.mean_ci95 == want.mean_ci95


class TestGraphNativeParity:
    @pytest.mark.parametrize(
        "spec",
        [AbcccSpec(3, 1, 2), DcellSpec(3, 1), FiconnSpec(4, 1)],
        ids=lambda s: s.label,
    )
    def test_exact_matches_network_and_legacy(self, spec):
        net = spec.build()
        want = legacy_link_hop_stats(net)
        via_net = sweep_distance_stats(net)
        via_graph = sweep_graph_distance_stats(compile_graph(net))
        assert_identical(via_net, want)
        assert_identical(via_graph, want)
        assert via_graph.exact and via_graph.mean_ci95 == 0.0

    @pytest.mark.parametrize("seed", [0, 7, 12345])
    def test_sampled_sources_match_legacy_sampling(self, seed):
        # Position-based sampling must pick the same sources as the
        # legacy name-list sampling for the same seed.
        net = AbcccSpec(3, 1, 2).build()
        want = legacy_link_hop_stats(net, sample_sources=5, seed=seed)
        via_net = sweep_distance_stats(net, sample_sources=5, seed=seed)
        via_graph = sweep_graph_distance_stats(
            compile_graph(net), sample_sources=5, seed=seed
        )
        assert_identical(via_net, want)
        assert_identical(via_graph, want)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_forced_kernels_agree(self, kernel):
        net = FiconnSpec(4, 1).build()
        graph = compile_graph(net)
        want = sweep_graph_distance_stats(graph, kernel="flat")
        got = sweep_graph_distance_stats(graph, kernel=kernel)
        assert_identical(got, want, ci=True)

    def test_kernel_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_KERNEL", "flat")
        assert resolve_kernel(None) == "flat"
        monkeypatch.setenv("REPRO_SWEEP_KERNEL", "vectorized-telepathy")
        with pytest.raises(ValueError, match="vectorized-telepathy"):
            resolve_kernel(None)
        with pytest.raises(ValueError):
            resolve_kernel("nope")
        for name in SWEEP_KERNELS:
            assert resolve_kernel(name) in KERNELS

    def test_unreachable_raises_with_graph_label(self):
        net = AbcccSpec(3, 1, 2).build()
        # Cutting one server's every link disconnects it.
        victim = net.servers[0]
        dead_links = [
            (victim, other) for other in list(net.neighbors(victim))
        ]
        broken = net.subgraph_without(dead_links=dead_links)
        with pytest.raises(ValueError, match="unreachable"):
            sweep_graph_distance_stats(compile_graph(broken))


class TestSampling:
    def test_auto_sample_above_threshold(self, monkeypatch):
        from repro.metrics import engine

        net = AbcccSpec(3, 1, 2).build()
        graph = compile_graph(net)
        # Sampling every source degenerates to exact, so shrink the cap.
        monkeypatch.setattr(engine, "AUTO_SAMPLE_SOURCES", 6)
        stats = sweep_graph_distance_stats(graph, auto_sample_threshold=10)
        assert not stats.exact
        want = sweep_graph_distance_stats(graph, sample_sources=6, seed=0)
        assert_identical(stats, want, ci=True)
        off = sweep_graph_distance_stats(
            graph, auto_sample_threshold=10, auto_sample=False
        )
        assert off.exact

    def test_network_wrapper_never_auto_samples(self):
        net = AbcccSpec(3, 1, 2).build()
        stats = sweep_distance_stats(net)
        assert stats.exact

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_ci_deterministic_across_kernels(self, kernel):
        # FiConn is not vertex-transitive, so sampled per-source means
        # spread and the CI is strictly positive — and identical across
        # kernels because all three produce exact integer distance sums.
        graph = compile_graph(FiconnSpec(4, 1).build())
        base = sweep_graph_distance_stats(
            graph, sample_sources=6, seed=3, kernel="flat"
        )
        got = sweep_graph_distance_stats(
            graph, sample_sources=6, seed=3, kernel=kernel
        )
        assert base.mean_ci95 > 0.0
        assert got.mean_ci95 == base.mean_ci95
        assert_identical(got, base, ci=True)

    def test_ci_zero_for_exact(self):
        graph = compile_graph(AbcccSpec(3, 1, 2).build())
        assert sweep_graph_distance_stats(graph).mean_ci95 == 0.0


@pytest.mark.skipif(not HAVE_NUMPY, reason="fastbuild requires numpy")
class TestFastBuiltGraphs:
    def test_fastbuild_sweep_matches_object_path(self):
        spec = AbcccSpec(4, 2, 2)
        graph = spec.compiled()
        want = sweep_distance_stats(spec.build())
        got = sweep_graph_distance_stats(graph)
        assert_identical(got, want)

    def test_fastbuild_sampled_with_lazy_names(self):
        # Sampling must not materialize the name list: sources are drawn
        # as positions into server_indices.
        spec = AbcccSpec(4, 2, 2)
        graph = spec.compiled()
        want = sweep_distance_stats(spec.build(), sample_sources=8, seed=1)
        got = sweep_graph_distance_stats(graph, sample_sources=8, seed=1)
        assert_identical(got, want)


class TestMaskedSweep:
    def test_masked_graph_matches_subgraph_compile(self):
        net = AbcccSpec(3, 1, 2).build()
        graph = compile_graph(net)
        victim = net.servers[3]
        u, v = net.servers[0], None
        for cand in net.neighbors(u):
            if net.node(cand).is_server:
                v = cand
                break
        scenario = FailureScenario(
            dead_servers=(victim,),
            dead_switches=(),
            dead_links=((u, v),) if v else (),
        )
        masked = MaskedGraph(graph, scenario)
        got = sweep_graph_distance_stats(masked)
        alive = net.subgraph_without(
            dead_nodes=[victim], dead_links=[(u, v)] if v else []
        )
        want = sweep_distance_stats(alive)
        assert got.diameter == want.diameter
        assert got.mean == want.mean
        assert got.histogram == want.histogram
        assert got.pairs == want.pairs

    def test_masked_default_drops_unreachable(self):
        # Killing a switch in BCCC (s=2) can strand nothing, so cut a
        # server off by links instead: masked sweeps drop those pairs
        # rather than raising.
        net = AbcccSpec(3, 1, 2).build()
        graph = compile_graph(net)
        victim = net.servers[0]
        scenario = FailureScenario(
            dead_servers=(),
            dead_switches=(),
            dead_links=tuple((victim, o) for o in net.neighbors(victim)),
        )
        stats = sweep_graph_distance_stats(MaskedGraph(graph, scenario))
        full = net.num_servers
        # victim is alive but unreachable: its pairs drop from the count.
        assert stats.pairs == (full - 1) * (full - 2)
        assert sum(stats.histogram.values()) == stats.pairs

    def test_sweep_view_feeds_pairwise(self):
        net = AbcccSpec(3, 1, 2).build()
        graph = compile_graph(net)
        scenario = FailureScenario(
            dead_servers=(net.servers[5],), dead_switches=(), dead_links=()
        )
        view = MaskedGraph(graph, scenario).sweep_view()
        assert isinstance(view, CSRGraphView)
        index = graph.index
        alive = net.subgraph_without(dead_nodes=[net.servers[5]])
        ga = compile_graph(alive)
        pairs = [(alive.servers[0], alive.servers[-1]), (alive.servers[2], alive.servers[7])]
        want = pairwise_distances(ga, [(ga.index[a], ga.index[b]) for a, b in pairs])
        got = pairwise_distances(view, [(index[a], index[b]) for a, b in pairs])
        assert got == want


class TestParallelHandoff:
    def test_parallel_matches_sequential_and_releases_shm(self):
        net = AbcccSpec(3, 1, 2).build()
        sample = max(PARALLEL_THRESHOLD, 2 * 2)
        want = sweep_distance_stats(net, sample_sources=sample, seed=0)
        got = sweep_distance_stats(net, sample_sources=sample, seed=0, workers=2)
        assert_identical(got, want)
        assert shm.owned_segments() == ()

    def test_degraded_pool_still_releases_shm(self, monkeypatch):
        from repro.metrics import engine

        class AlwaysBroken:
            def __init__(self, *a, **k):
                raise OSError("no semaphores here")

        monkeypatch.setattr(engine, "ProcessPoolExecutor", AlwaysBroken)
        monkeypatch.setattr(engine, "POOL_RETRY_BACKOFF_S", 0.0)
        net = AbcccSpec(3, 1, 2).build()
        sample = max(PARALLEL_THRESHOLD, 4)
        want = sweep_distance_stats(net, sample_sources=sample, seed=0)
        with pytest.warns(engine.DegradedModeWarning):
            got = sweep_distance_stats(
                net, sample_sources=sample, seed=0, workers=2
            )
        assert_identical(got, want)
        assert shm.owned_segments() == ()


class TestPairwiseKernels:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_pairwise_kernels_agree(self, kernel):
        import random as _random

        net = FiconnSpec(4, 1).build()
        graph = compile_graph(net)
        rng = _random.Random(9)
        n = graph.num_servers
        servers = list(graph.server_indices)
        pairs = [tuple(rng.sample(range(n), 2)) for _ in range(20)]
        pairs = [(servers[a], servers[b]) for a, b in pairs]
        pairs.append((servers[0], servers[0]))  # self-pair -> 0
        want = pairwise_distances(graph, pairs, kernel="flat")
        got = pairwise_distances(graph, pairs, kernel=kernel)
        assert got == want
        assert got[-1] == 0


class TestCSRGraphView:
    def test_view_of_is_idempotent_and_kernel_only(self):
        graph = compile_graph(AbcccSpec(3, 1, 2).build())
        view = CSRGraphView.of(graph)
        assert CSRGraphView.of(view) is view
        assert view.num_nodes == graph.num_nodes
        assert view.num_servers == graph.num_servers
        with pytest.raises(TypeError):
            view.names
        with pytest.raises(TypeError):
            view.index

    def test_view_sweep_matches_graph(self):
        graph = compile_graph(AbcccSpec(3, 1, 2).build())
        want = sweep_graph_distance_stats(graph)
        got = sweep_graph_distance_stats(CSRGraphView.of(graph))
        assert_identical(got, want)
