"""CAPEX model tests."""

import pytest

from repro.baselines import BcubeSpec, FatTreeSpec, HypercubeSpec
from repro.core import AbcccSpec, plan_abccc_growth
from repro.metrics.cost import CapexBreakdown, PriceBook, capex, expansion_capex


class TestPriceBook:
    def test_commodity_switch_cost_linear(self):
        prices = PriceBook(switch_base=100, switch_port=10)
        assert prices.switch_cost(8) == 100 + 80

    def test_premium_kink_above_commodity_radix(self):
        prices = PriceBook(
            switch_base=0, switch_port=10, premium_port=30, commodity_radix=48
        )
        assert prices.switch_cost(48) == 480
        assert prices.switch_cost(50) == 480 + 60

    def test_zero_ports(self):
        assert PriceBook().switch_cost(0) == 0.0


class TestCapex:
    def test_hand_computed_abccc(self):
        spec = AbcccSpec(2, 1, 2)  # 8 servers, 4 csw (2... ports), 4 lsw
        prices = PriceBook(
            switch_base=10, switch_port=1, premium_port=1, nic_port=2, cable=1
        )
        breakdown = capex(spec, prices)
        # level switches: 4 x (10 + 2); crossbar switches: 4 x (10 + 2)
        assert breakdown.switch_cost == 8 * 12
        assert breakdown.nic_cost == 8 * 2 * 2
        assert breakdown.cable_cost == spec.num_links * 1
        assert breakdown.total == breakdown.switch_cost + breakdown.nic_cost + breakdown.cable_cost
        assert breakdown.per_server == pytest.approx(breakdown.total / 8)

    def test_switchless_topology(self):
        breakdown = capex(HypercubeSpec(3))
        assert breakdown.switch_cost == 0.0
        assert breakdown.nic_cost > 0

    def test_default_price_book_used(self):
        assert capex(BcubeSpec(2, 1)).total > 0

    def test_per_server_ordering_matches_paper(self):
        """At default prices, the s dial raises per-server cost toward
        BCube — the monotonicity the T2/F4 narrative relies on."""
        prices = PriceBook()
        costs = [
            capex(AbcccSpec(4, 3, s), prices).per_server for s in (2, 3, 4)
        ]
        assert costs == sorted(costs)

    def test_as_dict_keys(self):
        data = capex(BcubeSpec(2, 1)).as_dict()
        assert set(data) == {"switches", "nics", "cables", "total", "per_server"}


class TestExpansionCapex:
    def test_positive_for_growth(self):
        plan = plan_abccc_growth(2, 1, 2)
        assert expansion_capex(plan) > 0

    def test_upgrades_cost_extra(self):
        from repro.core import plan_bcube_growth

        pure = plan_abccc_growth(3, 1, 2)
        dirty = plan_bcube_growth(3, 1)
        prices = PriceBook()
        # Same per-unit prices: the BCube plan pays for upgraded NICs too.
        assert expansion_capex(dirty, prices) > 0
        assert len(dirty.upgraded_servers) > 0
