"""Churn/availability simulation tests."""

import pytest

from repro.core import AbcccSpec
from repro.sim.churn import ChurnConfig, simulate_churn


@pytest.fixture(scope="module")
def fabric():
    spec = AbcccSpec(3, 1, 2)
    return spec, spec.build()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(server_mtbf=0)
        with pytest.raises(ValueError):
            ChurnConfig(sample_interval=-1)


class TestChurnRuns:
    def test_deterministic(self, fabric):
        _, net = fabric
        a = simulate_churn(net, duration=200.0, seed=7)
        b = simulate_churn(net, duration=200.0, seed=7)
        assert a == b

    def test_sampling_cadence(self, fabric):
        _, net = fabric
        config = ChurnConfig(sample_interval=10.0)
        result = simulate_churn(net, duration=100.0, config=config, seed=1)
        assert result.samples == 10
        assert result.pair_checks == result.samples * 20

    def test_no_failures_with_huge_mtbf(self, fabric):
        _, net = fabric
        config = ChurnConfig(server_mtbf=1e12, switch_mtbf=1e12)
        result = simulate_churn(net, duration=100.0, config=config, seed=2)
        assert result.pair_availability == 1.0
        assert result.mean_alive_fraction == 1.0

    def test_constant_churn_lowers_availability(self, fabric):
        _, net = fabric
        flaky = ChurnConfig(server_mtbf=50.0, server_mttr=25.0,
                            switch_mtbf=50.0, switch_mttr=25.0)
        result = simulate_churn(net, duration=500.0, config=flaky, seed=3)
        assert result.pair_availability < 1.0
        assert result.mean_alive_fraction < 1.0
        assert result.endpoint_down_checks > 0

    def test_path_availability_at_least_pair(self, fabric):
        """Excluding endpoint-hardware outages can only help."""
        _, net = fabric
        flaky = ChurnConfig(server_mtbf=100.0, server_mttr=30.0)
        result = simulate_churn(net, duration=400.0, config=flaky, seed=4)
        assert result.path_availability >= result.pair_availability

    def test_monitored_pairs_explicit(self, fabric):
        _, net = fabric
        pairs = [(net.servers[0], net.servers[1])]
        result = simulate_churn(
            net, duration=50.0, monitored_pairs=pairs, seed=5
        )
        assert result.pair_checks == result.samples * 1

    def test_availability_tracks_mttr(self, fabric):
        """Faster repair -> higher availability, same failure rate."""
        _, net = fabric
        slow = ChurnConfig(server_mtbf=100.0, server_mttr=50.0,
                           switch_mtbf=100.0, switch_mttr=50.0)
        fast = ChurnConfig(server_mtbf=100.0, server_mttr=2.0,
                           switch_mtbf=100.0, switch_mttr=2.0)
        slow_result = simulate_churn(net, duration=800.0, config=slow, seed=6)
        fast_result = simulate_churn(net, duration=800.0, config=fast, seed=6)
        assert fast_result.pair_availability > slow_result.pair_availability

    def test_too_few_servers(self):
        from repro.topology.graph import Network

        net = Network()
        net.add_server("only", ports=1)
        with pytest.raises(ValueError, match="two servers"):
            simulate_churn(net, duration=10.0)
