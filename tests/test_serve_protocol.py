"""Unit tests for the serve wire protocol: taxonomy, parsing, scenarios."""

import pytest

from repro.serve.protocol import (
    EMPTY_SCENARIO_KEY,
    MAX_SAMPLE_PAIRS,
    PROTOCOL_VERSION,
    ServeError,
    decode,
    degraded,
    encode,
    ok,
    parse_deadline_ms,
    parse_query,
    request_scenario_key,
    scenario_from_key,
    scenario_key,
)


class TestTaxonomy:
    def test_every_code_has_status_and_retryable(self):
        expected = {
            "bad-request": (400, False),
            "timeout": (504, True),
            "overload": (429, True),
            "unavailable": (503, True),
            "internal": (500, False),
        }
        for code, (status, retryable) in expected.items():
            error = ServeError(code, "x")
            assert error.http_status == status
            assert error.retryable is retryable

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ServeError("teapot", "x")

    def test_payload_round_trip(self):
        error = ServeError("overload", "queue full", retry_after_s=0.25)
        back = ServeError.from_payload(error.to_payload())
        assert back.code == "overload"
        assert back.message == "queue full"
        assert back.retry_after_s == 0.25
        assert back.retryable

    def test_from_payload_defaults_to_internal(self):
        error = ServeError.from_payload({"error": {"code": "weird"}})
        assert error.code == "internal"
        assert not error.retryable
        assert ServeError.from_payload({}).code == "internal"


class TestScenarioKey:
    def test_order_and_duplicates_collapse(self):
        a = scenario_key(["s1", "s0", "s1"], ["w2", "w1"], [["b", "a"]])
        b = scenario_key(["s0", "s1"], ["w1", "w2"], [["a", "b"], ["a", "b"]])
        assert a == b
        assert a == (("s0", "s1"), ("w1", "w2"), (("a", "b"),))

    def test_empty_key(self):
        assert scenario_key() == EMPTY_SCENARIO_KEY

    def test_link_pairs_normalised_lexicographically(self):
        key = scenario_key(dead_links=[["z", "a"], ["m", "n"]])
        assert key[2] == (("a", "z"), ("m", "n"))

    def test_bad_shapes_are_bad_requests(self):
        for kwargs in (
            {"dead_servers": "s0"},
            {"dead_servers": [1]},
            {"dead_servers": [""]},
            {"dead_links": "ab"},
            {"dead_links": [["a"]]},
            {"dead_links": [["a", 3]]},
        ):
            with pytest.raises(ServeError) as exc:
                scenario_key(**kwargs)
            assert exc.value.code == "bad-request"

    def test_round_trip_to_failure_scenario(self):
        key = scenario_key(["s0"], ["w0"], [["a", "b"]])
        scenario = scenario_from_key(key)
        assert scenario.dead_servers == ("s0",)
        assert scenario.dead_switches == ("w0",)
        assert scenario.dead_links == (("a", "b"),)


class TestParseQuery:
    def test_unknown_op(self):
        with pytest.raises(ServeError, match="unknown operation"):
            parse_query("teleport", {})

    def test_route_requires_src_and_dst(self):
        with pytest.raises(ServeError, match="src"):
            parse_query("route", {"dst": "a"})
        with pytest.raises(ServeError, match="dst"):
            parse_query("distance", {"src": "a"})

    def test_route_normalises(self):
        request = parse_query("route", {"src": "a", "dst": "b", "avoid": ["c"]})
        assert request == {
            "v": PROTOCOL_VERSION,
            "op": "route",
            "src": "a",
            "dst": "b",
            "avoid": ["c"],
        }

    def test_route_scenario_is_canonicalised(self):
        request = parse_query(
            "route",
            {"src": "a", "dst": "b", "scenario": {"dead_servers": ["t", "s", "t"]}},
        )
        assert request["scenario"][0] == ["s", "t"]
        assert request_scenario_key(request) == (("s", "t"), (), ())

    def test_whatif_defaults(self):
        request = parse_query("whatif", {})
        assert request["sample_pairs"] == 200
        assert request["seed"] == 0
        assert request["scenario"] == [[], [], []]

    def test_whatif_sample_pairs_bounds(self):
        with pytest.raises(ServeError, match="sample_pairs"):
            parse_query("whatif", {"sample_pairs": 0})
        with pytest.raises(ServeError, match="sample_pairs"):
            parse_query("whatif", {"sample_pairs": MAX_SAMPLE_PAIRS + 1})
        with pytest.raises(ServeError, match="sample_pairs"):
            parse_query("whatif", {"sample_pairs": True})

    def test_ping_is_minimal(self):
        assert parse_query("ping", {}) == {"v": PROTOCOL_VERSION, "op": "ping"}


class TestDeadline:
    def test_default_and_clamp(self):
        assert parse_deadline_ms(None, 10.0, 60.0) == 10.0
        assert parse_deadline_ms(500, 10.0, 60.0) == 0.5
        assert parse_deadline_ms(10 ** 9, 10.0, 60.0) == 60.0

    def test_invalid_values(self):
        for value in ("soon", 0, -5):
            with pytest.raises(ServeError, match="deadline_ms"):
                parse_deadline_ms(value, 10.0, 60.0)


class TestJsonHelpers:
    def test_encode_decode_round_trip(self):
        assert decode(encode({"a": 1})) == {"a": 1}

    def test_decode_garbage_is_bad_request(self):
        with pytest.raises(ServeError, match="JSON"):
            decode(b"{nope")
        with pytest.raises(ServeError, match="object"):
            decode(b"[1, 2]")

    def test_status_markers(self):
        assert ok({})["status"] == "ok"
        marked = degraded({"x": 1}, "partitioned")
        assert marked["status"] == "degraded"
        assert marked["degraded_reason"] == "partitioned"
        # ok() never downgrades an explicit degraded marker.
        assert ok(degraded({}, "r"))["status"] == "degraded"
