"""Cross-cutting property-based invariants (hypothesis).

Each test here spans several subsystems — the invariants a user relies
on implicitly when composing the library, driven over randomly drawn
parameters and inputs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AbcccSpec
from repro.core.address import AbcccParams, ServerAddress
from repro.core.broadcast import broadcast_tree
from repro.core.conformance import conformance_problems
from repro.core.routing import abccc_route, logical_distance
from repro.core.topology import build_abccc
from repro.topology.graph import Network
from repro.topology.serialize import from_json_dict, to_json_dict

small_params = st.builds(
    AbcccParams,
    n=st.integers(min_value=2, max_value=3),
    k=st.integers(min_value=0, max_value=2),
    s=st.integers(min_value=2, max_value=4),
)


@st.composite
def random_network(draw) -> Network:
    """A connected random server/switch network with spare ports."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10**6)))
    servers = draw(st.integers(min_value=2, max_value=8))
    switches = draw(st.integers(min_value=1, max_value=4))
    net = Network("prop")
    names = []
    for i in range(servers):
        net.add_server(f"srv{i}", ports=8, address=(i,))
        names.append(f"srv{i}")
    for i in range(switches):
        net.add_switch(f"sw{i}", ports=16, role="r")
        names.append(f"sw{i}")
    for i in range(1, len(names)):
        net.add_link(names[i], names[rng.randrange(i)], capacity=rng.choice([1.0, 2.5]))
    extra = draw(st.integers(min_value=0, max_value=6))
    for _ in range(extra):
        u, v = rng.sample(names, 2)
        if not net.has_link(u, v):
            net.add_link(u, v)
    return net


class TestSerializationProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_network())
    def test_json_roundtrip_random_networks(self, net):
        loaded = from_json_dict(to_json_dict(net))
        assert set(loaded.node_names()) == set(net.node_names())
        assert {l.key for l in loaded.links()} == {l.key for l in net.links()}
        for link in net.links():
            assert loaded.link(link.u, link.v).capacity == link.capacity

    @settings(max_examples=15, deadline=None)
    @given(small_params)
    def test_abccc_roundtrip_preserves_conformance(self, params):
        loaded = from_json_dict(to_json_dict(build_abccc(params)))
        assert conformance_problems(loaded, params) == []


class TestBuilderProperties:
    @settings(max_examples=15, deadline=None)
    @given(small_params)
    def test_builder_always_conformant(self, params):
        assert conformance_problems(build_abccc(params), params) == []

    @settings(max_examples=15, deadline=None)
    @given(small_params, st.integers(min_value=0, max_value=10**6))
    def test_broadcast_spans_from_any_source(self, params, pick):
        net = build_abccc(params)
        total = params.num_crossbars * params.crossbar_size
        source = ServerAddress.from_rank(params, pick % total)
        tree = broadcast_tree(params, source)
        assert set(tree.servers) == set(net.servers)
        tree.validate(net)


class TestRoutingConsistency:
    @settings(max_examples=30, deadline=None)
    @given(small_params, st.data())
    def test_route_symmetry_of_length(self, params, data):
        """Locality routes have symmetric lengths: |route(a,b)| == |route(b,a)|
        (the transfer structure mirrors when endpoints swap)."""
        total = params.num_crossbars * params.crossbar_size
        a = ServerAddress.from_rank(params, data.draw(st.integers(0, total - 1)))
        b = ServerAddress.from_rank(params, data.draw(st.integers(0, total - 1)))
        assert logical_distance(params, a, b) == logical_distance(params, b, a)

    @settings(max_examples=30, deadline=None)
    @given(small_params, st.data())
    def test_triangle_inequality_on_route_lengths(self, params, data):
        """Shortest-path distances must satisfy the triangle inequality —
        and locality routes ARE shortest (proven elsewhere), so their
        lengths must too."""
        total = params.num_crossbars * params.crossbar_size
        draw_addr = lambda: ServerAddress.from_rank(
            params, data.draw(st.integers(0, total - 1))
        )
        a, b, c = draw_addr(), draw_addr(), draw_addr()
        assert logical_distance(params, a, c) <= (
            logical_distance(params, a, b) + logical_distance(params, b, c)
        )


class TestFlowFctConsistency:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_fct_bounds_from_maxmin(self, seed):
        """For simultaneous unit flows: min-rate bound >= makespan >=
        max-rate bound (slowest/ fastest first-round rates bracket it)."""
        from repro.sim.fct import simulate_fct
        from repro.sim.flow import max_min_allocation, route_all
        from repro.sim.traffic import permutation_traffic

        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        flows = permutation_traffic(net.servers, seed=seed)
        routes = route_all(net, flows, spec.route)
        allocation = max_min_allocation(net, flows, routes)
        result = simulate_fct(net, flows, routes)
        assert result.makespan <= 1.0 / allocation.min_rate + 1e-9
        assert result.makespan >= 1.0 / allocation.max_rate - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_fct_monotone_in_volume(self, seed):
        """Doubling every flow's size exactly doubles the makespan
        (fluid model is scale-invariant)."""
        from repro.sim.fct import simulate_fct
        from repro.sim.flow import route_all
        from repro.sim.traffic import Flow, permutation_traffic

        spec = AbcccSpec(2, 1, 2)
        net = spec.build()
        base = permutation_traffic(net.servers, seed=seed)
        double = [Flow(f.flow_id, f.src, f.dst, size=2.0) for f in base]
        routes = route_all(net, base, spec.route)
        t1 = simulate_fct(net, base, routes).makespan
        t2 = simulate_fct(net, double, routes).makespan
        assert t2 == pytest.approx(2 * t1)
