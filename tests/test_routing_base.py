"""Tests for Route objects and length conventions."""

import pytest

from repro.routing.base import Route, RoutingError, stretch


class TestRouteBasics:
    def test_single_node_route(self):
        route = Route.of(["a"])
        assert route.source == "a"
        assert route.destination == "a"
        assert route.link_hops == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Route.of([])

    def test_endpoints_and_hops(self):
        route = Route.of(["a", "w", "b"])
        assert route.source == "a"
        assert route.destination == "b"
        assert route.link_hops == 2
        assert len(route) == 3
        assert list(route) == ["a", "w", "b"]

    def test_edges(self):
        route = Route.of(["a", "w", "b"])
        assert list(route.edges()) == [("a", "w"), ("w", "b")]

    def test_is_simple(self):
        assert Route.of(["a", "b", "c"]).is_simple
        assert not Route.of(["a", "b", "a"]).is_simple


class TestValidation:
    def test_valid_route(self, tiny_net):
        route = Route.of(["a", "sw", "b"])
        assert route.is_valid(tiny_net)
        route.validate(tiny_net)

    def test_unknown_node(self, tiny_net):
        route = Route.of(["a", "ghost"])
        assert not route.is_valid(tiny_net)
        with pytest.raises(RoutingError, match="unknown node"):
            route.validate(tiny_net)

    def test_non_link_step(self, tiny_net):
        route = Route.of(["a", "b"])
        with pytest.raises(RoutingError, match="non-existent link"):
            route.validate(tiny_net)


class TestServerHops:
    def test_switched_path(self, tiny_net):
        route = Route.of(["a", "sw", "b"])
        assert route.server_hops(tiny_net) == 1

    def test_single_server(self, tiny_net):
        assert Route.of(["a"]).server_hops(tiny_net) == 0

    def test_direct_server_links_count_once(self):
        from repro.topology.graph import Network

        net = Network()
        for name in ("a", "b", "c"):
            net.add_server(name, ports=2)
        net.add_link("a", "b")
        net.add_link("b", "c")
        route = Route.of(["a", "b", "c"])
        assert route.server_hops(net) == 2
        assert route.link_hops == 2


class TestConcat:
    def test_concat_joins(self):
        left = Route.of(["a", "w", "b"])
        right = Route.of(["b", "v", "c"])
        joined = left.concat(right)
        assert joined.nodes == ("a", "w", "b", "v", "c")

    def test_concat_requires_shared_endpoint(self):
        with pytest.raises(RoutingError, match="cannot concat"):
            Route.of(["a"]).concat(Route.of(["b"]))


class TestStretch:
    def test_equal_lengths(self):
        assert stretch(Route.of(["a", "b"]), 1) == 1.0

    def test_longer_route(self):
        assert stretch(Route.of(["a", "b", "c", "d"]), 2) == 1.5

    def test_zero_shortest_convention(self):
        assert stretch(Route.of(["a"]), 0) == 1.0
