"""Experiment-suite tests: every artefact runs (quick mode) and the
qualitative expectations recorded in EXPERIMENTS.md hold programmatically."""

import pytest

from repro.experiments import all_experiments, get_experiment, run_experiment
from repro.sim.results import ResultTable


class TestRegistry:
    def test_all_artefacts_present_and_ordered(self):
        experiments = all_experiments()
        assert [e.exp_id for e in experiments] == [
            "T1", "T2",
            "F1", "F2", "F3", "F4", "F5", "F6",
            "F7", "F8", "F9", "F10", "F11", "F12",
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
        ]

    def test_lookup_case_insensitive(self):
        assert get_experiment("f5").exp_id == "F5"

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("F99")

    def test_every_experiment_has_expectation(self):
        for experiment in all_experiments():
            assert experiment.expectation
            assert experiment.title


@pytest.fixture(scope="module")
def quick_results():
    """Run the full suite once, in quick mode, without CSV/printing."""
    return {
        exp.exp_id: exp.execute(quick=True) for exp in all_experiments()
    }


class TestAllRunQuick:
    def test_all_return_tables(self, quick_results):
        for exp_id, tables in quick_results.items():
            assert tables, exp_id
            for table in tables:
                assert isinstance(table, ResultTable)
                assert table.rows, f"{exp_id}: empty table {table.title}"


class TestExpectations:
    def test_t1_validation_rows_all_valid(self, quick_results):
        validation = quick_results["T1"][1]
        assert all(validation.column("valid"))

    def test_f1_diameter_ordering_and_linearity(self, quick_results):
        table = quick_results["F1"][0]
        s2 = table.column("abccc_s2")
        s5 = table.column("abccc_s5")
        bcube = table.column("bcube")
        for a, b, c in zip(bcube, s5, s2):
            assert a <= b <= c
        # Linear growth: constant second difference for k >= 1 at s=2.
        diffs = [b - a for a, b in zip(s2[1:], s2[2:])]
        assert all(d == diffs[0] for d in diffs)

    def test_f2_abccc_packs_more_than_bcube(self, quick_results):
        table = quick_results["F2"][0]
        for s2, bcube, k in zip(
            table.column("abccc_s2"), table.column("bcube"), table.column("k")
        ):
            if k >= 1:
                assert s2 > bcube

    def test_f3_bisection_monotone_in_s(self, quick_results):
        table = quick_results["F3"][0]
        for row in table.rows:
            values = [row[f"s{s}"] for s in (2, 3, 4, 5, 6)]
            assert values == sorted(values)
        measured = quick_results["F3"][1]
        assert all(measured.column("match"))

    def test_f4_ficonn_cheapest_bcube_priciest_in_cube_family(self, quick_results):
        table = quick_results["F4"][0]
        by_family = {}
        for row in table.rows:
            by_family.setdefault(row["family"], []).append(row["per_server"])
        assert min(by_family["ficonn"]) < min(by_family["abccc_s2"])
        assert max(by_family["abccc_s2"]) < max(by_family["bcube"])

    def test_f5_abccc_pure_addition_bcube_not(self, quick_results):
        table = quick_results["F5"][0]
        for row in table.rows:
            if row["family"].startswith("abccc") and "boundary" not in row["family"]:
                assert row["pure_addition"], row
                assert row["upgraded_servers"] == 0
            if row["family"] == "bcube":
                assert not row["pure_addition"]
                assert row["upgraded_servers"] > 0
            if row["family"] == "fattree":
                assert row["replaced_switches"] > 0

    def test_f6_locality_is_shortest(self, quick_results):
        table = quick_results["F6"][0]
        for row in table.rows:
            if row["strategy"] == "locality":
                assert row["mean_stretch"] == pytest.approx(1.0)
                assert row["shortest_frac"] == pytest.approx(1.0)
            else:
                assert row["mean_stretch"] >= 1.0

    def test_f7_throughput_tracks_bisection(self, quick_results):
        table = quick_results["F7"][0]
        perm = {
            row["topology"]: row["agg_per_server"]
            for row in table.rows
            if row["pattern"] == "permutation"
        }
        abccc = next(v for k, v in perm.items() if k.startswith("ABCCC"))
        bcube = next(v for k, v in perm.items() if k.startswith("BCUBE"))
        assert bcube >= abccc  # BCube's richer wiring wins per server

    def test_f8_connection_ratio_degrades_gracefully(self, quick_results):
        table = quick_results["F8"][0]
        for column in ("abccc_s2", "bcube"):
            values = {}
            for row in table.rows:
                if row["failure_kind"] == "server":
                    values[row["fraction"]] = row[column]
            assert values[0.0] == pytest.approx(1.0)
            assert all(v > 0.5 for v in values.values())  # graceful

    def test_f9_tree_beats_naive_unicast(self, quick_results):
        table = quick_results["F9"][0]
        for row in table.rows:
            assert row["tree_depth"] <= row["diameter_bound"]
            assert row["tree_stress"] <= row["unicast_max_link_load"]

    def test_f10_delivery_and_latency_sane(self, quick_results):
        table = quick_results["F10"][0]
        for row in table.rows:
            assert 0 < row["delivery_ratio"] <= 1.0
            assert row["mean_latency"] <= row["p99_latency"]

    def test_f11_frontier_monotone(self, quick_results):
        table = quick_results["F11"][0]
        diameters = table.column("diam_server_hops")
        bisections = table.column("bisection_per_srv")
        assert diameters == sorted(diameters, reverse=True)
        assert bisections == sorted(bisections)
        assert table.rows[0]["equals"] == "BCCC"
        assert table.rows[-1]["equals"] == "BCube"

    def test_f12_locality_shortest_identity_not_best_balanced(self, quick_results):
        table = quick_results["F12"][0]
        rows = {row["strategy"]: row for row in table.rows if row["instance"]}
        assert rows["locality"]["mean_links"] <= rows["identity"]["mean_links"]
        assert rows["locality"]["mean_links"] <= rows["random"]["mean_links"]

    def test_e1_tables_dwarf_algorithmic_state(self, quick_results):
        table = quick_results["E1"][0]
        for row in table.rows:
            assert row["table_mean_entries"] > row["algo_entries"]
            assert row["ratio"] > 1.0
            # tables scale with N: max entries at least the server count
            assert row["table_max_entries"] >= row["servers"] - 1

    def test_e2_headroom_grows_with_radix(self, quick_results):
        table = quick_results["E2"][0]
        k_values = table.column("k_max")
        sizes = table.column("servers_at_kmax")
        assert k_values == sorted(k_values)
        assert sizes == sorted(sizes)

    def test_e3_adaptive_no_worse_than_fixed(self, quick_results):
        table = quick_results["E3"][0]
        by_key = {}
        for row in table.rows:
            by_key[(row["instance"], row["workload"], row["policy"])] = row
        for (instance, workload, policy), row in by_key.items():
            if policy != "adaptive":
                continue
            fixed = by_key[(instance, workload, "fixed")]
            assert row["max_link_load"] <= fixed["max_link_load"]

    def test_e4_server_centric_keeps_cables_local(self, quick_results):
        table = quick_results["E4"][0]
        rows = {row["topology"]: row for row in table.rows}
        abccc = next(v for k, v in rows.items() if k.startswith("ABCCC"))
        fattree = next(v for k, v in rows.items() if k.startswith("FATTREE"))
        assert abccc["intra_rack_frac"] >= fattree["intra_rack_frac"]

    def test_e7_rack_failures_accounted(self, quick_results):
        table = quick_results["E7"][0]
        for row in table.rows:
            assert row["alive_servers"] < row["servers"]
            assert 0.0 <= row["connection_ratio"] <= 1.0
            # sum(p_i^2) <= max(p_i) exactly; allow sampling noise.
            assert row["connection_ratio"] <= row["largest_component"] + 0.1

    def test_e8_availability_sane(self, quick_results):
        table = quick_results["E8"][0]
        for row in table.rows:
            assert 0.0 < row["pair_availability"] <= 1.0
            assert row["path_availability"] >= row["pair_availability"]
            assert row["mean_alive_frac"] <= 1.0

    def test_e5_tree_bisection_collapses(self, quick_results):
        structural = quick_results["E5"][0]
        rows = {row["topology"]: row for row in structural.rows}
        tree = next(v for k, v in rows.items() if k.startswith("TREE"))
        abccc = next(v for k, v in rows.items() if k.startswith("ABCCC"))
        assert tree["bisection_links"] < tree["servers"] / 2
        assert tree["capex_per_server"] < abccc["capex_per_server"]


class TestRunnerPlumbing:
    def test_run_experiment_writes_csv(self, tmp_path):
        tables = run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        assert tables
        files = list(tmp_path.glob("f11*.csv"))
        assert files
