"""Reroute-impact accounting tests."""

import pytest

from repro.core import AbcccSpec, fault_tolerant_route
from repro.metrics.connectivity import FailureScenario, draw_failures
from repro.metrics.reroute import reroute_impact
from repro.routing.shortest import bfs_path
from repro.sim.traffic import permutation_traffic


@pytest.fixture(scope="module")
def fabric():
    spec = AbcccSpec(3, 2, 2)
    return spec, spec.build()


def _ft_router(spec):
    """Failure-aware ABCCC router usable on the alive subgraph."""

    def router(net, src, dst):
        return fault_tolerant_route(spec.abccc, net, src, dst, seed=1).route

    return router


class TestNoFailures:
    def test_everything_unchanged(self, fabric):
        spec, net = fabric
        flows = permutation_traffic(net.servers, seed=1)
        impact = reroute_impact(net, flows, bfs_path, FailureScenario((), (), ()))
        assert impact.unchanged == len(flows)
        assert impact.rerouted == impact.disconnected == impact.endpoint_lost == 0
        assert impact.churn_ratio == 0.0
        assert impact.throughput_retention == pytest.approx(1.0)


class TestWithFailures:
    def test_accounting_partitions_flows(self, fabric):
        spec, net = fabric
        flows = permutation_traffic(net.servers, seed=2)
        scenario = draw_failures(net, server_fraction=0.1, switch_fraction=0.1, seed=3)
        impact = reroute_impact(net, flows, _ft_router(spec), scenario)
        assert (
            impact.endpoint_lost
            + impact.disconnected
            + impact.rerouted
            + impact.unchanged
            == impact.total_flows
        )
        assert impact.endpoint_lost > 0  # 10% of servers died; perm traffic
        assert impact.rerouted > 0  # some surviving routes crossed failures

    def test_rerouted_routes_avoid_failures(self, fabric):
        """Internal consistency: churn_ratio and stretch are computed over
        flows whose *new* route is valid on the alive graph."""
        spec, net = fabric
        flows = permutation_traffic(net.servers, seed=4)
        scenario = draw_failures(net, switch_fraction=0.15, seed=5)
        impact = reroute_impact(net, flows, _ft_router(spec), scenario)
        assert 0.0 <= impact.churn_ratio <= 1.0
        assert impact.mean_stretch_rerouted >= 0.5

    def test_throughput_degrades_not_collapses(self, fabric):
        spec, net = fabric
        flows = permutation_traffic(net.servers, seed=6)
        scenario = draw_failures(net, switch_fraction=0.1, seed=7)
        impact = reroute_impact(net, flows, _ft_router(spec), scenario)
        assert 0.0 < impact.throughput_retention

    def test_address_router_without_fault_awareness(self, fabric):
        """A failure-oblivious router strands the flows whose route dies —
        recorded as disconnected, not silently rerouted."""
        spec, net = fabric
        flows = permutation_traffic(net.servers, seed=8)
        scenario = draw_failures(net, switch_fraction=0.2, seed=9)

        def oblivious(network, src, dst):
            return spec.route(net, src, dst)  # always the healthy route

        impact = reroute_impact(net, flows, oblivious, scenario)
        assert impact.rerouted == 0
        assert impact.disconnected > 0

    def test_total_switch_blackout(self, fabric):
        spec, net = fabric
        flows = permutation_traffic(net.servers, seed=10)
        scenario = draw_failures(net, switch_fraction=1.0, seed=11)
        impact = reroute_impact(net, flows, _ft_router(spec), scenario)
        assert impact.survivors == 0
        assert impact.aggregate_after == 0.0
        assert impact.throughput_retention == 0.0