"""Link-load accounting and aggregate bottleneck throughput."""

import pytest

from repro.metrics.bottleneck import (
    aggregate_bottleneck_throughput,
    link_loads,
    load_stats,
    per_server_abt,
)
from repro.routing.base import Route
from repro.topology.graph import Network


@pytest.fixture()
def path_net() -> Network:
    """a - w1 - b - w2 - c chain (servers a, b, c)."""
    net = Network("chain")
    for name in ("a", "b", "c"):
        net.add_server(name, ports=2)
    net.add_switch("w1", ports=2)
    net.add_switch("w2", ports=2)
    net.add_link("a", "w1")
    net.add_link("w1", "b")
    net.add_link("b", "w2")
    net.add_link("w2", "c")
    return net


class TestLinkLoads:
    def test_counts_crossings(self, path_net):
        r1 = Route.of(["a", "w1", "b"])
        r2 = Route.of(["a", "w1", "b", "w2", "c"])
        loads = link_loads(path_net, [r1, r2])
        assert loads[("a", "w1")] == 2.0
        assert loads[("b", "w2")] == 1.0

    def test_capacity_normalisation(self):
        net = Network()
        net.add_server("a", ports=1)
        net.add_server("b", ports=1)
        net.add_link("a", "b", capacity=4.0)
        loads = link_loads(net, [Route.of(["a", "b"])] * 2)
        assert loads[("a", "b")] == pytest.approx(0.5)

    def test_repeated_link_in_one_route_counts_twice(self, path_net):
        walk = Route.of(["a", "w1", "b", "w1", "a"])  # out and back
        loads = link_loads(path_net, [walk])
        # Each undirected link is crossed twice by the walk.
        assert loads[("a", "w1")] == 2.0
        assert loads[("b", "w1")] == 2.0


class TestLoadStats:
    def test_zeros_included(self, path_net):
        stats = load_stats(path_net, [Route.of(["a", "w1", "b"])])
        assert stats.total_links == 4
        assert stats.loaded_links == 2
        assert stats.utilisation == pytest.approx(0.5)
        assert stats.max_load == 1.0
        assert stats.mean_load == pytest.approx(0.5)

    def test_empty_routes(self, path_net):
        stats = load_stats(path_net, [])
        assert stats.num_routes == 0
        assert stats.max_load == 0.0
        assert stats.coefficient_of_variation == 0.0


class TestAbt:
    def test_hand_computed(self, path_net):
        # Two flows share a-w1-b; one flow continues to c.
        routes = [
            Route.of(["a", "w1", "b"]),
            Route.of(["a", "w1", "b", "w2", "c"]),
        ]
        # bottleneck load 2 on (a, w1); ABT = 2 flows / 2 = 1.
        assert aggregate_bottleneck_throughput(path_net, routes) == pytest.approx(1.0)

    def test_single_flow(self, path_net):
        routes = [Route.of(["a", "w1", "b"])]
        assert aggregate_bottleneck_throughput(path_net, routes) == pytest.approx(1.0)

    def test_empty(self, path_net):
        assert aggregate_bottleneck_throughput(path_net, []) == 0.0

    def test_per_server(self, path_net):
        routes = [Route.of(["a", "w1", "b"])]
        assert per_server_abt(path_net, routes) == pytest.approx(1.0 / 3)
