"""BCCC baseline: independent construction vs the ABCCC s=2 code path."""

import random

import pytest

from repro.baselines.bccc import BcccSpec, build_bccc
from repro.core import AbcccSpec
from repro.metrics.distance import server_hop_stats
from repro.routing.shortest import bfs_distances
from repro.topology.validate import LinkPolicy, validate_network


class TestIdentityWithAbccc:
    """The strongest generalisation check in the suite: the independent
    BCCC builder and ABCCC(s=2) produce *identical* graphs."""

    @pytest.mark.parametrize("n,k", [(2, 0), (3, 0), (2, 1), (3, 1), (2, 2), (3, 2), (4, 1)])
    def test_same_nodes_and_links(self, n, k):
        bccc = build_bccc(n, k)
        abccc = AbcccSpec(n, k, 2).build()
        assert set(bccc.node_names()) == set(abccc.node_names())
        assert {l.key for l in bccc.links()} == {l.key for l in abccc.links()}

    @pytest.mark.parametrize("n,k", [(3, 1), (2, 2)])
    def test_same_node_attributes(self, n, k):
        bccc = build_bccc(n, k)
        abccc = AbcccSpec(n, k, 2).build()
        for name in bccc.node_names():
            ours = bccc.node(name)
            theirs = abccc.node(name)
            assert ours.kind == theirs.kind
            assert ours.ports == theirs.ports
            assert ours.role == theirs.role


class TestStructure:
    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2)])
    def test_counts(self, n, k):
        spec = BcccSpec(n, k)
        net = spec.build()
        assert net.num_servers == spec.num_servers
        assert net.num_switches == spec.num_switches
        assert net.num_links == spec.num_links
        validate_network(net, LinkPolicy.server_centric())

    def test_dual_port_servers(self):
        net = build_bccc(3, 2)
        for server in net.servers:
            assert net.node(server).ports == 2
            assert net.degree(server) == 2

    def test_diameter_formula(self):
        for n, k in ((2, 1), (3, 1), (2, 2)):
            spec = BcccSpec(n, k)
            measured = server_hop_stats(spec.build()).diameter
            assert measured == spec.diameter_server_hops == 2 * k + 2

    def test_k0_degenerates_to_star(self):
        net = build_bccc(4, 0)
        assert net.num_servers == 4
        assert net.num_switches == 1

    def test_switch_inventory(self):
        spec = BcccSpec(3, 3)  # crossbars of 4 > n = 3
        inventory = spec.switch_inventory()
        assert inventory[3] == 4 * 27  # level switches
        assert inventory[4] == 81  # crossbar switches


class TestRouting:
    def test_routes_shortest(self):
        spec = BcccSpec(3, 2)
        net = spec.build()
        rng = random.Random(12)
        for _ in range(30):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            route.validate(net)
            assert route.link_hops == bfs_distances(net, src, targets={dst})[dst]
