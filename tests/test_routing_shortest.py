"""BFS primitives cross-checked against networkx."""

import random

import networkx as nx
import pytest

from repro.routing.base import RoutingError
from repro.routing.shortest import (
    all_pairs_server_distances,
    bfs_distances,
    bfs_path,
    eccentricity,
    k_shortest_paths,
    shortest_distance,
)
from repro.topology.graph import Network


def _random_net(seed: int, servers: int = 10, extra_links: int = 12) -> Network:
    """A random connected server-only network (direct links)."""
    rng = random.Random(seed)
    net = Network(f"rand{seed}")
    names = [f"n{i}" for i in range(servers)]
    for name in names:
        net.add_server(name, ports=servers)
    for i in range(1, servers):  # random spanning tree first
        net.add_link(names[i], names[rng.randrange(i)])
    added = 0
    while added < extra_links:
        u, v = rng.sample(names, 2)
        if not net.has_link(u, v):
            net.add_link(u, v)
            added += 1
    return net


@pytest.mark.parametrize("seed", range(5))
def test_bfs_distances_match_networkx(seed):
    net = _random_net(seed)
    graph = net.to_networkx()
    for source in list(net.node_names())[:4]:
        ours = bfs_distances(net, source)
        reference = nx.single_source_shortest_path_length(graph, source)
        assert ours == dict(reference)


@pytest.mark.parametrize("seed", range(5))
def test_bfs_path_is_shortest_and_valid(seed):
    net = _random_net(seed)
    rng = random.Random(seed + 99)
    for _ in range(10):
        src, dst = rng.sample(list(net.node_names()), 2)
        route = bfs_path(net, src, dst)
        route.validate(net)
        assert route.is_simple
        assert route.link_hops == shortest_distance(net, src, dst)


def test_bfs_path_same_endpoints():
    net = _random_net(0)
    route = bfs_path(net, "n0", "n0")
    assert route.nodes == ("n0",)


def test_bfs_unknown_nodes():
    net = _random_net(0)
    with pytest.raises(RoutingError, match="unknown source"):
        bfs_path(net, "ghost", "n0")
    with pytest.raises(RoutingError, match="unknown destination"):
        bfs_path(net, "n0", "ghost")


def test_bfs_unreachable():
    net = Network()
    net.add_server("a", ports=1)
    net.add_server("b", ports=1)
    with pytest.raises(RoutingError, match="unreachable"):
        bfs_path(net, "a", "b")


def test_avoid_blocks_nodes(tiny_net):
    with pytest.raises(RoutingError, match="unreachable"):
        bfs_path(tiny_net, "a", "b", avoid={"sw"})


def test_avoid_blocked_destination(tiny_net):
    with pytest.raises(RoutingError, match="blocked"):
        bfs_path(tiny_net, "a", "b", avoid={"b"})


def test_targets_early_exit():
    net = _random_net(1)
    dist = bfs_distances(net, "n0", targets={"n1"})
    assert "n1" in dist


def test_eccentricity_matches_networkx():
    net = _random_net(2)
    graph = net.to_networkx()
    assert eccentricity(net, "n0") == nx.eccentricity(graph, "n0")


def test_eccentricity_over_subset():
    net = _random_net(2)
    subset = ["n1", "n2"]
    expected = max(shortest_distance(net, "n0", t) for t in subset)
    assert eccentricity(net, "n0", over=subset) == expected


def test_k_shortest_paths_ordering(tiny_net):
    tiny_net.add_switch("sw2", ports=4)
    tiny_net.add_link("a", "sw2")
    tiny_net.add_link("b", "sw2")
    paths = k_shortest_paths(tiny_net, "a", "b", k=5)
    assert len(paths) == 2
    assert all(p.link_hops == 2 for p in paths)


def test_k_shortest_paths_no_path():
    net = Network()
    net.add_server("a", ports=1)
    net.add_server("b", ports=1)
    assert k_shortest_paths(net, "a", "b", k=3) == []


def test_all_pairs_server_distances(abccc_small):
    _, net = abccc_small
    triples = list(all_pairs_server_distances(net))
    servers = net.num_servers
    assert len(triples) == servers * (servers - 1)
    by_pair = {(s, d): h for s, d, h in triples}
    # Symmetric because links are undirected.
    for (s, d), hops in list(by_pair.items())[:30]:
        assert by_pair[(d, s)] == hops
