"""CLI surface tests (argument parsing, outputs, exit codes)."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_topologies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kind in ("abccc", "bcube", "fattree"):
            assert kind in out


class TestBuild:
    def test_build_summary(self, capsys):
        assert main(["build", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2"]) == 0
        out = capsys.readouterr().out
        assert "18 servers" in out
        assert "structural invariants: OK" in out

    def test_bad_param_value(self, capsys):
        assert main(["build", "abccc", "-p", "n=three"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "integer" in err
        assert "Traceback" not in err
        assert err.count("\n") == 1

    def test_bad_param_format(self, capsys):
        assert main(["build", "abccc", "-p", "n:3"]) == 2
        err = capsys.readouterr().err
        assert "name=value" in err
        assert "Traceback" not in err

    def test_unknown_kind_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["build", "zork"])


class TestBuildFast:
    ABCCC_ARGS = ["-p", "n=3", "-p", "k=1", "-p", "s=2"]

    def test_fast_summary(self, capsys):
        assert main(["build", "abccc", *self.ABCCC_ARGS, "--fast"]) == 0
        out = capsys.readouterr().out
        assert "18 servers" in out
        assert "(fastbuild)" in out
        assert "CSR" in out

    def test_fast_falls_back_for_unsupported_family(self, capsys):
        assert main(["build", "fattree", "-p", "p=4", "--fast"]) == 0
        assert "(object graph)" in capsys.readouterr().out

    def test_fast_memmap_writes_arrays(self, tmp_path, capsys):
        mm = str(tmp_path / "arrays")
        assert main(["build", "abccc", *self.ABCCC_ARGS, "--fast", "--memmap", mm]) == 0
        assert "memory-mapped" in capsys.readouterr().out
        files = [p.name for p in (tmp_path / "arrays").iterdir()]
        assert any(name.endswith(".indptr.u32") for name in files)

    def test_fast_trace_records_build_span(self, tmp_path, capsys):
        from repro.obs.report import load_trace

        trace = str(tmp_path / "build.trace.jsonl")
        assert main(["build", "abccc", *self.ABCCC_ARGS, "--fast", "--trace", trace]) == 0
        assert "trace written" in capsys.readouterr().out
        names = {e["name"] for e in load_trace(trace) if e["ev"] == "span"}
        assert "topology.fastbuild" in names


class TestSweep:
    ABCCC_ARGS = ["-p", "n=3", "-p", "k=1", "-p", "s=2"]

    def test_exact_sweep_summary(self, capsys):
        assert main(["sweep", "abccc", *self.ABCCC_ARGS]) == 0
        out = capsys.readouterr().out
        assert "18 servers" in out
        assert "diameter 8 link hops" in out
        assert "exact" in out

    def test_sampled_sweep_reports_lower_bound(self, capsys):
        assert main(
            ["sweep", "abccc", *self.ABCCC_ARGS, "--sample", "4", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "diameter >=" in out
        assert "sampled" in out

    def test_kernel_flag_accepted(self, capsys):
        for kernel in ("bitpack", "dense", "flat"):
            assert main(
                ["sweep", "abccc", *self.ABCCC_ARGS, "--kernel", kernel]
            ) == 0
            assert "diameter 8 link hops" in capsys.readouterr().out

    def test_sweep_trace_records_span(self, tmp_path, capsys):
        from repro.obs.report import load_trace

        trace = str(tmp_path / "sweep.trace.jsonl")
        assert main(["sweep", "abccc", *self.ABCCC_ARGS, "--trace", trace]) == 0
        assert "trace written" in capsys.readouterr().out
        names = {e["name"] for e in load_trace(trace) if e["ev"] == "span"}
        assert "engine.sweep" in names


class TestRoute:
    def test_route_by_index(self, capsys):
        code = main(
            ["route", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2", "0", "17"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "link hops" in out
        assert "->" in out

    def test_route_by_name(self, capsys):
        code = main(
            ["route", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2",
             "s0.0/0", "s2.2/1"]
        )
        assert code == 0

    def test_bad_server_token(self, capsys):
        assert main(
            ["route", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2", "0", "zap"]
        ) == 2
        err = capsys.readouterr().err
        assert "neither" in err
        assert "Traceback" not in err


class TestErrorPaths:
    """Operator mistakes exit 2 with one friendly stderr line, never a
    traceback (the contract ``REPRO_DEBUG=1`` opts back out of)."""

    def test_sweep_bad_param(self, capsys):
        assert main(["sweep", "abccc", "-p", "n=many"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "Traceback" not in err

    def test_sweep_malformed_spec(self, capsys):
        # n below the minimum radix: the spec constructor raises
        # AddressError (a ValueError), surfaced as a friendly line.
        assert main(["sweep", "abccc", "-p", "n=0", "-p", "k=1", "-p", "s=2"]) == 2
        err = capsys.readouterr().err
        assert "radix" in err
        assert "Traceback" not in err

    def test_serve_unknown_kind_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["serve", "zork"])

    def test_serve_bad_workers(self, capsys):
        assert main(
            ["serve", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2",
             "--workers", "-1"]
        ) == 2
        err = capsys.readouterr().err
        assert "--workers" in err
        assert "Traceback" not in err

    def test_serve_bad_queue(self, capsys):
        assert main(
            ["serve", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2",
             "--queue", "0"]
        ) == 2
        assert "--queue" in capsys.readouterr().err

    def test_serve_bad_memmap(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("plain file")
        assert main(
            ["serve", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2",
             "--memmap", str(bogus)]
        ) == 2
        err = capsys.readouterr().err
        assert "--memmap" in err
        assert "Traceback" not in err

    def test_debug_env_reraises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        from repro.cli import CliError

        with pytest.raises(CliError):
            main(["build", "abccc", "-p", "n=three"])


class TestExportVerifyManifest:
    ABCCC_ARGS = ["-p", "n=3", "-p", "k=1", "-p", "s=2"]

    def test_export_json_then_verify(self, capsys, tmp_path):
        path = str(tmp_path / "net.json")
        assert main(["export", "abccc", *self.ABCCC_ARGS, path]) == 0
        assert main(["verify", path]) == 0
        out = capsys.readouterr().out
        assert "verified as ABCCC(n=3, k=1, s=2)" in out

    def test_verify_with_explicit_params(self, capsys, tmp_path):
        path = str(tmp_path / "net.json")
        main(["export", "abccc", *self.ABCCC_ARGS, path])
        assert main(["verify", path, "-p", "n=3", "-p", "k=1", "-p", "s=2"]) == 0

    def test_verify_wrong_params_fails(self, capsys, tmp_path):
        path = str(tmp_path / "net.json")
        main(["export", "abccc", *self.ABCCC_ARGS, path])
        assert main(["verify", path, "-p", "n=3", "-p", "k=2", "-p", "s=2"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_verify_foreign_network_fails(self, capsys, tmp_path):
        path = str(tmp_path / "ft.json")
        main(["export", "fattree", "-p", "p=4", path])
        assert main(["verify", path]) == 1

    def test_export_dot(self, capsys, tmp_path):
        path = str(tmp_path / "net.dot")
        assert main(["export", "bcube", "-p", "n=2", "-p", "k=1", "-f", "dot", path]) == 0
        with open(path) as handle:
            assert "graph" in handle.read()

    def test_export_graphml(self, tmp_path):
        path = str(tmp_path / "net.graphml")
        assert main(
            ["export", "hypercube", "-p", "m=3", "-f", "graphml", path]
        ) == 0

    def test_manifest(self, capsys):
        assert main(
            ["manifest", "abccc", *self.ABCCC_ARGS, "--rack-capacity", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "deployment manifest" in out
        assert "racks" in out

    def test_manifest_json(self, capsys):
        import json

        assert main(
            ["manifest", "abccc", *self.ABCCC_ARGS, "--rack-capacity", "6", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_racks"] == len(data["racks"])
        assert all({"u", "v", "length_m"} <= set(c) for c in data["cables"])
        # rack -> doomed nodes is exactly the serve /whatif input shape
        assert isinstance(data["racks"][0]["servers"], list)


class TestPlan:
    def test_plan_lists_candidates(self, capsys):
        code = main(
            ["plan", "--min-servers", "200", "--max-servers", "3000",
             "--max-nic-ports", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ABCCC(" in out
        assert "pareto" in out

    def test_plan_infeasible(self, capsys):
        code = main(
            ["plan", "--min-servers", "1000000000", "--max-servers",
             "1000000001", "--switch-radix", "4"]
        )
        assert code == 1
        assert "no feasible" in capsys.readouterr().out

    def test_plan_headroom_filters(self, capsys):
        main(["plan", "--min-servers", "100", "--max-servers", "100000",
              "--max-nic-ports", "2", "--headroom", "2"])
        out = capsys.readouterr().out
        # Every listed config can grow twice purely: k + 3 <= n at s=2.
        for line in out.splitlines():
            if line.startswith("ABCCC("):
                inner = line.split(")")[0]
                n = int(inner.split("n=")[1].split(",")[0])
                k = int(inner.split("k=")[1].split(",")[0])
                assert k + 3 <= n


class TestExperiments:
    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F12" in out

    def test_run_single_quick(self, capsys, tmp_path):
        code = main(["run", "F11", "--quick", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "F11" in out
        assert (tmp_path / "f11.csv").exists()


class TestTraffic:
    ARGS = ["traffic", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2"]

    def test_patterns_in_lockstep_with_engine(self):
        # cli.TRAFFIC_PATTERNS is a numpy-free mirror of the registry
        from repro import cli
        from repro.traffic import MATRICES

        assert cli.TRAFFIC_PATTERNS == tuple(sorted(MATRICES))

    def test_healthy_run_prints_table(self, capsys):
        assert main(self.ARGS + ["--pattern", "permutation", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Traffic: permutation" in out
        assert "agg_per_server" in out
        assert "compile" in out and "trials" in out

    def test_degraded_run_with_fct_and_outputs(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            self.ARGS
            + [
                "--pattern", "incast",
                "--trials", "2",
                "--faults", "switch=0.05,link=0.01",
                "--fct",
                "--out", str(tmp_path),
                "--metrics", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded" in out
        csvs = list(tmp_path.glob("traffic_*_incast.csv"))
        assert len(csvs) == 1
        assert metrics_path.exists()
        import json

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot  # histograms were recorded

    def test_resume_replays_journal(self, capsys, tmp_path):
        args = self.ARGS + [
            "--pattern", "uniform", "--trials", "2", "--out", str(tmp_path)
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        # replayed table is identical (elapsed_s comes from the journal)
        table_lines = lambda text: [
            line for line in text.splitlines() if line.startswith("|")
        ]
        assert table_lines(first) == table_lines(second)

    def test_bad_faults_exit_2(self, capsys):
        assert main(self.ARGS + ["--faults", "rack=0.5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "rack" in err
        assert "Traceback" not in err

    def test_bad_matrix_param_exit_2(self, capsys):
        assert main(self.ARGS + ["-m", "fan_in"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")

    def test_bad_trials_exit_2(self, capsys):
        assert main(self.ARGS + ["--trials", "0"]) == 2
        err = capsys.readouterr().err
        assert "--trials" in err

    def test_unknown_pattern_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--pattern", "nope"])
