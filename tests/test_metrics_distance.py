"""Distance metrics: projections, stats, sampling."""

import networkx as nx
import pytest

from repro.metrics.distance import (
    DistanceStats,
    link_diameter,
    link_hop_stats,
    logical_server_adjacency,
    server_diameter,
    server_hop_stats,
)
from repro.topology.graph import Network


class TestLogicalAdjacency:
    def test_shared_switch(self, tiny_net):
        adjacency = logical_server_adjacency(tiny_net)
        assert adjacency["a"] == {"b"}
        assert adjacency["b"] == {"a"}

    def test_direct_link(self):
        net = Network()
        net.add_server("a", ports=1)
        net.add_server("b", ports=1)
        net.add_link("a", "b")
        adjacency = logical_server_adjacency(net)
        assert adjacency["a"] == {"b"}

    def test_mixed(self, abccc_small):
        _, net = abccc_small
        adjacency = logical_server_adjacency(net)
        # Every dual-port server has crossbar peers + n-1 level peers.
        spec = abccc_small[0]
        for server, peers in adjacency.items():
            assert len(peers) == (spec.abccc.crossbar_size - 1) + (spec.n - 1)


class TestStats:
    def test_link_stats_match_networkx(self, abccc_small):
        _, net = abccc_small
        stats = link_hop_stats(net)
        graph = net.to_networkx()
        servers = net.servers
        expected_diameter = max(
            nx.shortest_path_length(graph, s, d)
            for s in servers[:6]
            for d in servers
            if s != d
        )
        assert stats.diameter >= expected_diameter
        assert stats.exact
        assert stats.pairs == len(servers) * (len(servers) - 1)

    def test_histogram_sums_to_pairs(self, abccc_small):
        _, net = abccc_small
        stats = server_hop_stats(net)
        assert sum(stats.histogram.values()) == stats.pairs

    def test_mean_consistent_with_histogram(self, abccc_small):
        _, net = abccc_small
        stats = link_hop_stats(net)
        mean = sum(h * c for h, c in stats.histogram.items()) / stats.pairs
        assert stats.mean == pytest.approx(mean)

    def test_sampling_reduces_pairs(self, abccc_medium):
        _, net = abccc_medium
        sampled = link_hop_stats(net, sample_sources=5, seed=1)
        assert not sampled.exact
        assert sampled.pairs == 5 * (net.num_servers - 1)

    def test_sampled_diameter_lower_bounds_exact(self, abccc_small):
        _, net = abccc_small
        exact = link_hop_stats(net)
        sampled = link_hop_stats(net, sample_sources=3, seed=2)
        assert sampled.diameter <= exact.diameter

    def test_p99(self):
        stats = DistanceStats(
            diameter=10, mean=2.0, histogram={1: 99, 10: 1}, pairs=100, exact=True
        )
        assert stats.p99 == 1
        stats = DistanceStats(
            diameter=10, mean=2.0, histogram={1: 90, 10: 10}, pairs=100, exact=True
        )
        assert stats.p99 == 10

    def test_disconnected_raises(self):
        net = Network()
        net.add_server("a", ports=1)
        net.add_server("b", ports=1)
        with pytest.raises(ValueError, match="unreachable"):
            link_hop_stats(net)


class TestConvenience:
    def test_diameters(self, abccc_small):
        spec, net = abccc_small
        assert server_diameter(net) == spec.diameter_server_hops
        assert link_diameter(net) == spec.diameter_link_hops
