"""BCube baseline: structure, formulas, DCRouting."""

import itertools
import random

import pytest

from repro.baselines.bcube import (
    BcubeSpec,
    bcube_embed,
    bcube_route,
    build_bcube,
    parse_server,
    server_name,
)
from repro.metrics.distance import server_hop_stats
from repro.routing.base import RoutingError
from repro.routing.shortest import bfs_distances
from repro.topology.validate import LinkPolicy, validate_network


class TestStructure:
    @pytest.mark.parametrize("n,k", [(2, 0), (2, 2), (3, 1), (4, 1), (3, 2)])
    def test_counts_match_formulas(self, n, k):
        spec = BcubeSpec(n, k)
        net = spec.build()
        assert net.num_servers == spec.num_servers == n ** (k + 1)
        assert net.num_switches == spec.num_switches == (k + 1) * n**k
        assert net.num_links == spec.num_links == (k + 1) * n ** (k + 1)
        validate_network(net, LinkPolicy.server_centric())

    def test_every_server_uses_all_ports(self):
        net = build_bcube(3, 2)
        for server in net.servers:
            assert net.degree(server) == 3  # k + 1

    def test_adjacent_servers_differ_in_one_digit(self):
        net = build_bcube(3, 1)
        for switch in net.switches:
            members = [parse_server(s) for s in net.neighbors(switch)]
            for a, b in itertools.combinations(members, 2):
                differing = sum(1 for x, y in zip(a, b) if x != y)
                assert differing == 1

    def test_diameter(self):
        for n, k in ((2, 1), (3, 1), (2, 2)):
            spec = BcubeSpec(n, k)
            measured = server_hop_stats(spec.build()).diameter
            assert measured == spec.diameter_server_hops == k + 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BcubeSpec(1, 1)
        with pytest.raises(ValueError):
            BcubeSpec(3, -1)


class TestNames:
    def test_roundtrip(self):
        digits = (1, 0, 2)
        assert parse_server(server_name(digits)) == digits

    def test_msb_first(self):
        assert server_name((1, 0, 2)) == "s2.0.1"

    def test_rejects_abccc_names(self):
        with pytest.raises(Exception):
            parse_server("s1.0/2")


class TestRouting:
    def test_routes_are_shortest(self):
        spec = BcubeSpec(3, 2)
        net = spec.build()
        rng = random.Random(7)
        for _ in range(40):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            route.validate(net)
            assert route.link_hops == bfs_distances(net, src, targets={dst})[dst]

    def test_hop_count_is_hamming_distance(self):
        route = bcube_route(3, 2, (0, 0, 0), (1, 0, 2))
        assert route.link_hops == 2 * 2  # two digits differ -> two hops

    def test_custom_order(self):
        route = bcube_route(3, 1, (0, 0), (1, 1), order=[1, 0])
        assert route.nodes[1].startswith("l1")

    def test_incomplete_order_rejected(self):
        with pytest.raises(RoutingError, match="not correct"):
            bcube_route(3, 1, (0, 0), (1, 1), order=[0])

    def test_wrong_length_address(self):
        with pytest.raises(RoutingError, match="digits"):
            bcube_route(3, 1, (0,), (1, 1))


class TestEmbed:
    def test_server_gains_zero_digit(self):
        assert bcube_embed("s2.1") == "s0.2.1"

    def test_switch_gains_zero_digit(self):
        old = build_bcube(2, 1)
        new = build_bcube(2, 2)
        for name in old.node_names():
            assert bcube_embed(name) in new
