"""Traffic-pattern generators: shapes, determinism, validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.traffic import (
    Flow,
    all_to_all_traffic,
    hotspot_traffic,
    one_to_all_traffic,
    permutation_traffic,
    shuffle_traffic,
    uniform_random_traffic,
)

SERVERS = [f"s{i}" for i in range(12)]


class TestFlow:
    def test_self_flow_rejected(self):
        with pytest.raises(ValueError, match="src == dst"):
            Flow("f", "a", "a")

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            Flow("f", "a", "b", size=0)


class TestPermutation:
    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_is_derangement(self, count, seed):
        servers = [f"n{i}" for i in range(count)]
        flows = permutation_traffic(servers, seed=seed)
        assert len(flows) == count
        sources = [f.src for f in flows]
        destinations = [f.dst for f in flows]
        assert sorted(sources) == sorted(servers)
        assert sorted(destinations) == sorted(servers)
        assert all(f.src != f.dst for f in flows)

    def test_seed_determinism(self):
        assert permutation_traffic(SERVERS, 3) == permutation_traffic(SERVERS, 3)

    def test_too_few_servers(self):
        with pytest.raises(ValueError):
            permutation_traffic(["only"])


class TestAllToAll:
    def test_complete(self):
        flows = all_to_all_traffic(SERVERS[:4])
        assert len(flows) == 12
        pairs = {(f.src, f.dst) for f in flows}
        assert len(pairs) == 12

    def test_subsampled(self):
        flows = all_to_all_traffic(SERVERS, max_flows=20, seed=1)
        assert len(flows) == 20
        assert len({(f.src, f.dst) for f in flows}) == 20

    def test_cap_larger_than_population(self):
        flows = all_to_all_traffic(SERVERS[:3], max_flows=100)
        assert len(flows) == 6


class TestUniform:
    def test_count_and_validity(self):
        flows = uniform_random_traffic(SERVERS, 30, seed=2)
        assert len(flows) == 30
        assert all(f.src != f.dst for f in flows)

    def test_distinct_ids(self):
        flows = uniform_random_traffic(SERVERS, 30, seed=2)
        assert len({f.flow_id for f in flows}) == 30


class TestHotspot:
    def test_hot_traffic_targets_hotspots(self):
        flows = hotspot_traffic(SERVERS, 200, num_hotspots=2, hot_fraction=1.0, seed=3)
        destinations = {f.dst for f in flows}
        assert len(destinations) == 2

    def test_mixed_fraction(self):
        flows = hotspot_traffic(SERVERS, 300, num_hotspots=1, hot_fraction=0.5, seed=4)
        counts = {}
        for flow in flows:
            counts[flow.dst] = counts.get(flow.dst, 0) + 1
        # The hotspot should receive far more than a uniform share.
        assert max(counts.values()) > 300 / len(SERVERS) * 3

    def test_validation(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            hotspot_traffic(SERVERS, 10, hot_fraction=1.5)
        with pytest.raises(ValueError, match="num_hotspots"):
            hotspot_traffic(SERVERS, 10, num_hotspots=0)


class TestShuffle:
    def test_every_mapper_to_every_reducer(self):
        flows = shuffle_traffic(SERVERS, num_mappers=3, num_reducers=4, seed=5)
        assert len(flows) == 12
        mappers = {f.src for f in flows}
        reducers = {f.dst for f in flows}
        assert len(mappers) == 3
        assert len(reducers) == 4
        assert not mappers & reducers  # disjoint roles

    def test_too_many_roles(self):
        with pytest.raises(ValueError, match="exceed"):
            shuffle_traffic(SERVERS[:4], num_mappers=3, num_reducers=2)


class TestOneToAll:
    def test_covers_everyone_once(self):
        flows = one_to_all_traffic(SERVERS, source="s3")
        assert len(flows) == len(SERVERS) - 1
        assert all(f.src == "s3" for f in flows)
        assert "s3" not in {f.dst for f in flows}

    def test_default_source(self):
        flows = one_to_all_traffic(SERVERS)
        assert flows[0].src == SERVERS[0]

    def test_unknown_source(self):
        with pytest.raises(ValueError, match="not a server"):
            one_to_all_traffic(SERVERS, source="ghost")
