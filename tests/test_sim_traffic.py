"""Traffic-pattern generators: shapes, determinism, validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.traffic import (
    Flow,
    all_to_all_traffic,
    hotspot_traffic,
    one_to_all_traffic,
    permutation_traffic,
    shuffle_traffic,
    uniform_random_traffic,
)

SERVERS = [f"s{i}" for i in range(12)]


class TestFlow:
    def test_self_flow_rejected(self):
        with pytest.raises(ValueError, match="src == dst"):
            Flow("f", "a", "a")

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            Flow("f", "a", "b", size=0)


class TestPermutation:
    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_is_derangement(self, count, seed):
        servers = [f"n{i}" for i in range(count)]
        flows = permutation_traffic(servers, seed=seed)
        assert len(flows) == count
        sources = [f.src for f in flows]
        destinations = [f.dst for f in flows]
        assert sorted(sources) == sorted(servers)
        assert sorted(destinations) == sorted(servers)
        assert all(f.src != f.dst for f in flows)

    def test_seed_determinism(self):
        assert permutation_traffic(SERVERS, 3) == permutation_traffic(SERVERS, 3)

    def test_too_few_servers(self):
        with pytest.raises(ValueError):
            permutation_traffic(["only"])


class TestAllToAll:
    def test_complete(self):
        flows = all_to_all_traffic(SERVERS[:4])
        assert len(flows) == 12
        pairs = {(f.src, f.dst) for f in flows}
        assert len(pairs) == 12

    def test_subsampled(self):
        flows = all_to_all_traffic(SERVERS, max_flows=20, seed=1)
        assert len(flows) == 20
        assert len({(f.src, f.dst) for f in flows}) == 20

    def test_cap_larger_than_population(self):
        flows = all_to_all_traffic(SERVERS[:3], max_flows=100)
        assert len(flows) == 6


class TestUniform:
    def test_count_and_validity(self):
        flows = uniform_random_traffic(SERVERS, 30, seed=2)
        assert len(flows) == 30
        assert all(f.src != f.dst for f in flows)

    def test_distinct_ids(self):
        flows = uniform_random_traffic(SERVERS, 30, seed=2)
        assert len({f.flow_id for f in flows}) == 30


class TestHotspot:
    def test_hot_traffic_targets_hotspots(self):
        flows = hotspot_traffic(SERVERS, 200, num_hotspots=2, hot_fraction=1.0, seed=3)
        destinations = {f.dst for f in flows}
        assert len(destinations) == 2

    def test_mixed_fraction(self):
        flows = hotspot_traffic(SERVERS, 300, num_hotspots=1, hot_fraction=0.5, seed=4)
        counts = {}
        for flow in flows:
            counts[flow.dst] = counts.get(flow.dst, 0) + 1
        # The hotspot should receive far more than a uniform share.
        assert max(counts.values()) > 300 / len(SERVERS) * 3

    def test_validation(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            hotspot_traffic(SERVERS, 10, hot_fraction=1.5)
        with pytest.raises(ValueError, match="num_hotspots"):
            hotspot_traffic(SERVERS, 10, num_hotspots=0)


class TestShuffle:
    def test_every_mapper_to_every_reducer(self):
        flows = shuffle_traffic(SERVERS, num_mappers=3, num_reducers=4, seed=5)
        assert len(flows) == 12
        mappers = {f.src for f in flows}
        reducers = {f.dst for f in flows}
        assert len(mappers) == 3
        assert len(reducers) == 4
        assert not mappers & reducers  # disjoint roles

    def test_too_many_roles(self):
        with pytest.raises(ValueError, match="exceed"):
            shuffle_traffic(SERVERS[:4], num_mappers=3, num_reducers=2)


class TestOneToAll:
    def test_covers_everyone_once(self):
        flows = one_to_all_traffic(SERVERS, source="s3")
        assert len(flows) == len(SERVERS) - 1
        assert all(f.src == "s3" for f in flows)
        assert "s3" not in {f.dst for f in flows}

    def test_default_source(self):
        flows = one_to_all_traffic(SERVERS)
        assert flows[0].src == SERVERS[0]

    def test_unknown_source(self):
        with pytest.raises(ValueError, match="not a server"):
            one_to_all_traffic(SERVERS, source="ghost")


class TestIntegerServerIds:
    """Generators accept any opaque hashable ids — ordinals included.

    The large-scale :mod:`repro.traffic` path hands CSR server ordinals
    straight to these generators for small-scale cross-checks; name
    strings must never be assumed.
    """

    def test_permutation_over_range(self):
        flows = permutation_traffic(range(10), seed=3)
        assert len(flows) == 10
        assert all(isinstance(f.src, int) for f in flows)
        assert all(f.src != f.dst for f in flows)

    def test_all_to_all_over_ints(self):
        flows = all_to_all_traffic(list(range(5)), seed=0)
        assert len(flows) == 5 * 4
        assert {(f.src, f.dst) for f in flows} == {
            (a, b) for a in range(5) for b in range(5) if a != b
        }

    def test_uniform_and_hotspot_over_ints(self):
        uniform = uniform_random_traffic(range(8), num_flows=20, seed=1)
        hot = hotspot_traffic(range(8), num_flows=20, seed=1)
        for flows in (uniform, hot):
            assert len(flows) == 20
            assert all(0 <= f.src < 8 and 0 <= f.dst < 8 for f in flows)
            assert all(f.src != f.dst for f in flows)

    def test_shuffle_and_one_to_all_over_ints(self):
        shuffle = shuffle_traffic(range(9), num_mappers=3, num_reducers=2, seed=2)
        assert len(shuffle) == 6
        broadcast = one_to_all_traffic(range(6), source=4)
        assert len(broadcast) == 5
        assert all(f.src == 4 for f in broadcast)

    def test_numpy_integer_ids(self):
        import numpy as np

        ids = np.arange(7)
        flows = permutation_traffic(ids, seed=5)
        assert len(flows) == 7
        # numpy scalars stay hashable and comparable
        assert all(f.src != f.dst for f in flows)

    def test_same_seed_same_flows_regardless_of_id_type(self):
        by_ordinal = permutation_traffic(range(12), seed=9)
        by_name = permutation_traffic([f"s{i}" for i in range(12)], seed=9)
        # the drawn permutation is positionally identical
        names = [f"s{i}" for i in range(12)]
        assert [names[f.src] for f in by_ordinal] == [f.src for f in by_name]
        assert [names[f.dst] for f in by_ordinal] == [f.dst for f in by_name]
