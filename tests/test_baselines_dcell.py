"""DCell baseline: recursive construction, uid codecs, DCellRouting."""

import random

import pytest

from repro.baselines.dcell import (
    DcellSpec,
    build_dcell,
    dcell_route,
    dcell_servers,
    dcell_subcells,
    level_link,
    parse_server,
    path_to_uid,
    server_name,
    uid_to_path,
)
from repro.metrics.distance import server_hop_stats
from repro.routing.shortest import bfs_distances
from repro.topology.validate import LinkPolicy, validate_network


class TestCounts:
    def test_size_recursion(self):
        assert dcell_servers(4, 0) == 4
        assert dcell_servers(4, 1) == 20
        assert dcell_servers(4, 2) == 420
        assert dcell_subcells(4, 1) == 5
        assert dcell_subcells(4, 2) == 21

    @pytest.mark.parametrize("n,k", [(2, 0), (3, 1), (4, 1), (2, 2), (3, 2)])
    def test_built_counts_match_formulas(self, n, k):
        spec = DcellSpec(n, k)
        net = spec.build()
        assert net.num_servers == spec.num_servers
        assert net.num_switches == spec.num_switches
        assert net.num_links == spec.num_links
        validate_network(net, LinkPolicy.direct_server())

    def test_server_degree_budget(self):
        net = build_dcell(3, 2)
        for server in net.servers:
            assert net.degree(server) <= 3  # k + 1 ports

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DcellSpec(1, 1)
        with pytest.raises(ValueError):
            build_dcell(3, -1)


class TestUidCodec:
    @pytest.mark.parametrize("n,level", [(3, 0), (3, 1), (4, 1), (2, 2)])
    def test_roundtrip(self, n, level):
        for uid in range(dcell_servers(n, level)):
            path = uid_to_path(n, level, uid)
            assert path_to_uid(n, path) == uid

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            uid_to_path(3, 1, 10**6)

    def test_name_roundtrip(self):
        path = (2, 0, 1)
        assert parse_server(server_name(path)) == path


class TestLevelLinks:
    def test_symmetric_rule(self):
        left, right = level_link(3, 1, (), 0, 2)
        # sub-cell 0's uid-1 server <-> sub-cell 2's uid-0 server
        assert left == (0, 1)
        assert right == (2, 0)

    def test_requires_ordered_pair(self):
        with pytest.raises(ValueError):
            level_link(3, 1, (), 2, 1)

    def test_each_server_used_at_most_once_per_level(self):
        """The wiring consumes each server's level-l port at most once."""
        net = build_dcell(3, 2)
        for server in net.servers:
            direct = [
                v for v in net.neighbors(server) if net.node(v).is_server
            ]
            assert len(direct) <= 2  # one per level 1 and 2


class TestRouting:
    @pytest.mark.parametrize("n,k", [(3, 1), (2, 2), (3, 2)])
    def test_routes_valid_and_bounded(self, n, k):
        spec = DcellSpec(n, k)
        net = spec.build()
        rng = random.Random(3)
        bound = 2 ** (k + 1) - 1
        for _ in range(40):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            route.validate(net)
            assert route.source == src and route.destination == dst
            assert route.server_hops(net) <= bound

    def test_same_cell_route(self):
        net = build_dcell(3, 1)
        route = dcell_route(3, 1, (0, 0), (0, 2))
        route.validate(net)
        assert route.link_hops == 2  # through the DCell_0 switch

    def test_self_route(self):
        route = dcell_route(3, 1, (1, 2), (1, 2))
        assert route.link_hops == 0

    def test_diameter_bound_holds_globally(self):
        spec = DcellSpec(3, 1)
        net = spec.build()
        assert server_hop_stats(net).diameter <= spec.diameter_server_hops

    def test_routing_beats_worst_case_on_average(self):
        """DCellRouting is not shortest-path, but must stay close: its
        mean server-hop length within 2x of the BFS mean."""
        spec = DcellSpec(3, 1)
        net = spec.build()
        rng = random.Random(5)
        total_routed = total_bfs = 0
        for _ in range(60):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            total_routed += route.server_hops(net)
            # BFS link-hops: switch hops count 2, direct hops count 1; use
            # the logical metric via server_hops of the BFS path instead.
            from repro.routing.shortest import bfs_path

            total_bfs += bfs_path(net, src, dst).server_hops(net)
        assert total_routed <= 2 * total_bfs
