"""Fluid FCT simulation: hand-computable schedules and invariants."""

import pytest

from repro.routing.base import Route
from repro.sim.fct import FctResult, shuffle_completion_time, simulate_fct
from repro.sim.traffic import Flow, permutation_traffic
from repro.topology.graph import Network


def _single_link(capacity=1.0) -> Network:
    net = Network()
    net.add_server("a", ports=4)
    net.add_server("b", ports=4)
    net.add_link("a", "b", capacity=capacity)
    return net


def _ab_routes(flows):
    return {f.flow_id: Route.of(["a", "b"]) for f in flows}


class TestHandSchedules:
    def test_single_flow(self):
        net = _single_link()
        flows = [Flow("f", "a", "b", size=3.0)]
        result = simulate_fct(net, flows, _ab_routes(flows))
        assert result.completion_times["f"] == pytest.approx(3.0)
        assert result.makespan == pytest.approx(3.0)

    def test_two_equal_flows_share_then_nothing_frees(self):
        """Two size-1 flows on one unit link: both at rate 0.5, both done
        at t=2."""
        net = _single_link()
        flows = [Flow("f1", "a", "b"), Flow("f2", "a", "b")]
        result = simulate_fct(net, flows, _ab_routes(flows))
        assert result.completion_times["f1"] == pytest.approx(2.0)
        assert result.completion_times["f2"] == pytest.approx(2.0)

    def test_unequal_sizes_redistribute(self):
        """Sizes 1 and 3 sharing a unit link: both at 0.5 until t=2 (small
        one done), then the big one runs at 1.0 with 2 volume left -> t=4."""
        net = _single_link()
        flows = [Flow("small", "a", "b", size=1.0), Flow("big", "a", "b", size=3.0)]
        result = simulate_fct(net, flows, _ab_routes(flows))
        assert result.completion_times["small"] == pytest.approx(2.0)
        assert result.completion_times["big"] == pytest.approx(4.0)
        assert result.fct("big") == pytest.approx(4.0)

    def test_late_arrival(self):
        """Second flow arrives at t=1: first runs alone [0,1) at rate 1
        (0.0 volume left at t=1? no: size 2, 1 left), then both share."""
        net = _single_link()
        flows = [Flow("early", "a", "b", size=2.0), Flow("late", "a", "b", size=1.0)]
        result = simulate_fct(
            net, flows, _ab_routes(flows), arrivals={"late": 1.0}
        )
        # t in [0,1): early alone, 1 volume left. t >= 1: share at 0.5.
        # early finishes at 1 + 1/0.5 = 3; late: 1 + ... late has 1 volume
        # at 0.5 -> would finish at 3 too (both bottlenecked equally).
        assert result.completion_times["early"] == pytest.approx(3.0)
        assert result.completion_times["late"] == pytest.approx(3.0)
        assert result.fct("late") == pytest.approx(2.0)

    def test_idle_gap_between_arrivals(self):
        net = _single_link()
        flows = [Flow("f1", "a", "b"), Flow("f2", "a", "b")]
        result = simulate_fct(
            net, flows, _ab_routes(flows), arrivals={"f1": 0.0, "f2": 10.0}
        )
        assert result.completion_times["f1"] == pytest.approx(1.0)
        assert result.completion_times["f2"] == pytest.approx(11.0)


class TestInvariants:
    def test_all_flows_complete(self, abccc_small):
        spec, net = abccc_small
        from repro.sim.flow import route_all

        flows = permutation_traffic(net.servers, seed=3)
        routes = route_all(net, flows, spec.route)
        result = simulate_fct(net, flows, routes)
        assert set(result.completion_times) == {f.flow_id for f in flows}
        assert result.makespan == max(result.completion_times.values())
        assert all(t > 0 for t in result.fcts)

    def test_makespan_lower_bound(self, abccc_small):
        """Makespan >= the size/min-max-min-rate bound of the first round."""
        spec, net = abccc_small
        from repro.sim.flow import max_min_allocation, route_all

        flows = permutation_traffic(net.servers, seed=4)
        routes = route_all(net, flows, spec.route)
        allocation = max_min_allocation(net, flows, routes)
        result = simulate_fct(net, flows, routes)
        assert result.makespan >= 1.0 / allocation.max_rate - 1e-9

    def test_helper_matches_simulation(self, abccc_small):
        spec, net = abccc_small
        from repro.sim.flow import route_all

        flows = permutation_traffic(net.servers, seed=5)
        routes = route_all(net, flows, spec.route)
        assert shuffle_completion_time(net, flows, routes) == pytest.approx(
            simulate_fct(net, flows, routes).makespan
        )


class TestValidation:
    def test_duplicate_flow_ids(self):
        net = _single_link()
        flows = [Flow("f", "a", "b"), Flow("f", "a", "b")]
        with pytest.raises(ValueError, match="duplicate"):
            simulate_fct(net, flows, _ab_routes(flows))

    def test_unknown_arrival(self):
        net = _single_link()
        flows = [Flow("f", "a", "b")]
        with pytest.raises(KeyError, match="unknown flow"):
            simulate_fct(net, flows, _ab_routes(flows), arrivals={"ghost": 1.0})

    def test_round_budget(self):
        net = _single_link()
        # Distinct sizes force one completion (and one solver round) each.
        flows = [Flow(f"f{i}", "a", "b", size=float(i + 1)) for i in range(5)]
        with pytest.raises(RuntimeError, match="rounds"):
            simulate_fct(net, flows, _ab_routes(flows), max_rounds=2)

    def test_empty_flow_set(self):
        net = _single_link()
        result = simulate_fct(net, [], {})
        assert result.makespan == 0.0
        assert result.mean_fct == 0.0
