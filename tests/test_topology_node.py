"""Unit tests for node/link primitives."""

import pytest

from repro.topology.node import Link, Node, NodeKind, link_key


class TestNode:
    def test_server_flags(self):
        node = Node("s1", NodeKind.SERVER, ports=2)
        assert node.is_server
        assert not node.is_switch

    def test_switch_flags(self):
        node = Node("w1", NodeKind.SWITCH, ports=8, role="level")
        assert node.is_switch
        assert not node.is_server
        assert node.role == "level"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Node("", NodeKind.SERVER, ports=1)

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError, match="port"):
            Node("x", NodeKind.SERVER, ports=0)

    def test_negative_ports_rejected(self):
        with pytest.raises(ValueError):
            Node("x", NodeKind.SWITCH, ports=-3)

    def test_address_carried(self):
        node = Node("s", NodeKind.SERVER, ports=1, address=(1, 2))
        assert node.address == (1, 2)

    def test_frozen(self):
        node = Node("s", NodeKind.SERVER, ports=1)
        with pytest.raises(AttributeError):
            node.ports = 5


class TestLinkKey:
    def test_sorts_endpoints(self):
        assert link_key("b", "a") == ("a", "b")
        assert link_key("a", "b") == ("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            link_key("a", "a")


class TestLink:
    def test_between_canonicalises(self):
        link = Link.between("z", "a")
        assert link.key == ("a", "z")

    def test_direct_constructor_enforces_order(self):
        with pytest.raises(ValueError, match="canonical"):
            Link("z", "a")

    def test_other_endpoint(self):
        link = Link.between("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"

    def test_other_rejects_non_member(self):
        link = Link.between("a", "b")
        with pytest.raises(KeyError):
            link.other("c")

    def test_capacity_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Link.between("a", "b", capacity=0)

    def test_length_positive(self):
        with pytest.raises(ValueError, match="length"):
            Link.between("a", "b", length=-1)

    def test_default_capacity(self):
        assert Link.between("a", "b").capacity == 1.0
