"""Tests for the topology registry and the TopologySpec interface."""

import pytest

from repro.core import AbcccSpec
from repro.topology import registry
from repro.topology.spec import TopologySpec


class TestRegistry:
    def test_builtins_available(self):
        kinds = registry.available()
        assert {"abccc", "bccc", "bcube", "dcell", "fattree", "ficonn", "hypercube"} <= set(
            kinds
        )

    def test_create(self):
        spec = registry.create("abccc", n=3, k=1, s=2)
        assert isinstance(spec, AbcccSpec)
        assert spec.params() == {"n": 3, "k": 1, "s": 2}

    def test_unknown_kind(self):
        with pytest.raises(registry.UnknownTopologyError, match="nope"):
            registry.create("nope")

    def test_reregister_same_class_is_noop(self):
        registry.register(AbcccSpec)  # idempotent

    def test_register_conflicting_class_rejected(self):
        class Impostor(AbcccSpec):
            kind = "abccc"

        with pytest.raises(ValueError, match="already registered"):
            registry.register(Impostor)

    def test_register_empty_kind_rejected(self):
        class Nameless(AbcccSpec):
            kind = ""

        with pytest.raises(ValueError, match="empty kind"):
            registry.register(Nameless)


class TestSpecInterface:
    def test_label(self):
        assert AbcccSpec(4, 2, 3).label == "ABCCC(n=4, k=2, s=3)"

    def test_equality_and_hash(self):
        a = AbcccSpec(3, 1, 2)
        b = AbcccSpec(3, 1, 2)
        c = AbcccSpec(3, 1, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_cross_kind_inequality(self):
        from repro.baselines import BcccSpec

        assert AbcccSpec(3, 1, 2) != BcccSpec(3, 1)

    def test_default_switch_inventory(self):
        from repro.baselines import BcubeSpec

        spec = BcubeSpec(4, 1)
        assert spec.switch_inventory() == {4: spec.num_switches}

    def test_empty_inventory_for_switchless(self):
        from repro.baselines import HypercubeSpec

        assert HypercubeSpec(3).switch_inventory() == {}

    def test_default_link_diameter_doubles_server_hops(self):
        spec = AbcccSpec(3, 1, 2)
        assert spec.diameter_link_hops == 2 * spec.diameter_server_hops

    def test_default_route_is_bfs(self, fattree_small):
        spec, net = fattree_small
        route = spec.route(net, net.servers[0], net.servers[-1])
        assert route.link_hops == 6
