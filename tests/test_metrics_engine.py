"""Parity: compiled sweep engine vs the legacy pure-Python distance path.

The acceptance bar for the engine is *byte-identical* ``DistanceStats``
(diameter, mean, histogram, pairs, exact) against the dict-BFS reference
on every topology family — including after failures, which exercises the
compile-cache invalidation keyed on ``Network.version``.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

from repro.baselines import BcubeSpec, DcellSpec, FiconnSpec, JellyfishSpec
from repro.core import AbcccSpec
from repro.metrics.distance import (
    legacy_link_hop_stats,
    legacy_server_hop_stats,
    link_hop_stats,
    server_hop_stats,
)
from repro.metrics.engine import (
    PARALLEL_THRESHOLD,
    resolve_workers,
    set_default_workers,
    sweep_distance_stats,
)

# Jellyfish is switch-centric: its server "projection" is edgeless, so
# server-hop parity is only meaningful on the server-centric families.
FAMILIES = {
    "abccc": lambda: AbcccSpec(3, 1, 2).build(),
    "bcube": lambda: BcubeSpec(3, 1).build(),
    "dcell": lambda: DcellSpec(3, 1).build(),
    "ficonn": lambda: FiconnSpec(4, 1).build(),
    "jellyfish": lambda: JellyfishSpec(8, 6, 2, seed=1).build(),
}
SERVER_CENTRIC = ("abccc", "bcube", "dcell", "ficonn")


def assert_identical(got, want):
    assert got.diameter == want.diameter
    assert got.mean == want.mean
    assert got.histogram == want.histogram
    assert all(
        isinstance(k, int) and isinstance(v, int) for k, v in got.histogram.items()
    )
    assert got.pairs == want.pairs
    assert got.exact == want.exact


class TestLinkHopParity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_exact(self, family):
        net = FAMILIES[family]()
        assert_identical(link_hop_stats(net), legacy_link_hop_stats(net))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_sampled_sources_match_legacy_sampling(self, family):
        net = FAMILIES[family]()
        got = link_hop_stats(net, sample_sources=5, seed=7)
        want = legacy_link_hop_stats(net, sample_sources=5, seed=7)
        assert_identical(got, want)
        assert not got.exact

    def test_parallel_path_matches_sequential(self):
        net = AbcccSpec(3, 2, 2).build()
        sequential = link_hop_stats(net, workers=1)
        parallel = link_hop_stats(net, workers=2)
        assert_identical(parallel, sequential)


class TestServerHopParity:
    @pytest.mark.parametrize("family", SERVER_CENTRIC)
    def test_exact(self, family):
        net = FAMILIES[family]()
        assert_identical(server_hop_stats(net), legacy_server_hop_stats(net))

    @pytest.mark.parametrize("family", SERVER_CENTRIC)
    def test_sampled(self, family):
        net = FAMILIES[family]()
        assert_identical(
            server_hop_stats(net, sample_sources=4, seed=3),
            legacy_server_hop_stats(net, sample_sources=4, seed=3),
        )


class TestCacheInvalidationParity:
    def test_parity_after_link_removal(self):
        net = AbcccSpec(3, 1, 2).build()
        link_hop_stats(net)  # warm the compile cache
        removable = next(net.links())
        net.remove_link(removable.u, removable.v)
        assert_identical(link_hop_stats(net), legacy_link_hop_stats(net))

    def test_parity_after_node_removal(self):
        net = BcubeSpec(3, 1).build()
        server_hop_stats(net)  # warm both cached views
        net.remove_node(net.servers[0])
        assert_identical(link_hop_stats(net), legacy_link_hop_stats(net))
        assert_identical(server_hop_stats(net), legacy_server_hop_stats(net))

    def test_unreachable_pairs_raise_like_legacy(self):
        net = AbcccSpec(3, 1, 2).build()
        victim = net.servers[0]
        for neighbour in list(net.neighbors(victim)):
            net.remove_link(victim, neighbour)
        with pytest.raises(ValueError, match="unreachable"):
            link_hop_stats(net)
        with pytest.raises(ValueError, match="unreachable"):
            legacy_link_hop_stats(net)


class TestEngineKnobs:
    def test_default_workers_roundtrip(self):
        previous = set_default_workers(4)
        try:
            assert resolve_workers(None) == 4
            assert resolve_workers(2) == 2
        finally:
            set_default_workers(previous)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_garbage_env_warns_and_falls_back(self, monkeypatch):
        import warnings

        from repro.metrics.engine import get_default_workers

        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS='lots'"):
            assert resolve_workers(None) == get_default_workers()
        # Explicit argument still wins, silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(2) == 2

    def test_zero_means_all_cores(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_small_graph_stays_sequential(self):
        # Fewer sources than the threshold: parallel request must still be
        # correct (engine silently falls back to in-process sweep).
        net = AbcccSpec(3, 1, 2).build()
        sample = min(PARALLEL_THRESHOLD - 1, net.num_servers)
        got = sweep_distance_stats(net, sample_sources=sample, seed=0, workers=8)
        want = legacy_link_hop_stats(net, sample_sources=sample, seed=0)
        assert_identical(got, want)


if HAVE_HYPOTHESIS:

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        sample=st.one_of(st.none(), st.integers(min_value=2, max_value=6)),
    )
    def test_property_engine_matches_legacy(n, seed, sample):
        net = AbcccSpec(n, 1, 2).build()
        got = link_hop_stats(net, sample_sources=sample, seed=seed)
        want = legacy_link_hop_stats(net, sample_sources=sample, seed=seed)
        assert_identical(got, want)


class TestPoolRecovery:
    """A crashed or unbuildable worker pool must never kill the caller,
    and degrading to sequential must be loud, not silent."""

    @staticmethod
    def _call(**overrides):
        from repro.metrics.engine import map_with_pool_recovery

        kwargs = dict(
            workers=2,
            sequential=lambda tasks: [t * 10 for t in tasks],
            context="unit test",
        )
        kwargs.update(overrides)
        return map_with_pool_recovery(_times_ten, [1, 2, 3], **kwargs)

    def test_healthy_pool_no_warning(self, recwarn):
        assert self._call() == [10, 20, 30]
        from repro.metrics.engine import DegradedModeWarning

        assert not [w for w in recwarn.list if w.category is DegradedModeWarning]

    def test_always_broken_pool_degrades_loudly(self, monkeypatch):
        from repro.metrics import engine

        class AlwaysBroken:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork for you")

        monkeypatch.setattr(engine, "ProcessPoolExecutor", AlwaysBroken)
        monkeypatch.setattr(engine, "POOL_RETRY_BACKOFF_S", 0.0)
        with pytest.warns(engine.DegradedModeWarning, match="unit test"):
            assert self._call() == [10, 20, 30]

    def test_fails_once_then_recovers_without_warning(self, monkeypatch, recwarn):
        from repro.metrics import engine

        real_pool = engine.ProcessPoolExecutor
        attempts = []

        class FlakyPool:
            def __init__(self, *args, **kwargs):
                attempts.append(1)
                if len(attempts) == 1:
                    raise OSError("transient fork failure")
                self._pool = real_pool(*args, **kwargs)

            def __enter__(self):
                return self._pool.__enter__()

            def __exit__(self, *exc):
                return self._pool.__exit__(*exc)

        monkeypatch.setattr(engine, "ProcessPoolExecutor", FlakyPool)
        monkeypatch.setattr(engine, "POOL_RETRY_BACKOFF_S", 0.0)
        assert self._call() == [10, 20, 30]
        assert len(attempts) == 2  # first crashed, retry succeeded
        assert not [
            w for w in recwarn.list if w.category is engine.DegradedModeWarning
        ]

    def test_unpicklable_task_degrades_loudly(self, monkeypatch):
        from repro.metrics import engine

        monkeypatch.setattr(engine, "POOL_RETRY_BACKOFF_S", 0.0)
        unpicklable = lambda x: x + 1  # noqa: E731 — lambdas cannot pickle
        with pytest.warns(engine.DegradedModeWarning):
            result = engine.map_with_pool_recovery(
                unpicklable,
                [1, 2],
                workers=2,
                sequential=lambda tasks: [unpicklable(t) for t in tasks],
                context="pickle test",
            )
        assert result == [2, 3]


def _times_ten(x):
    return x * 10
