"""Metrics registry: histograms, quantiles, merge algebra, exposition."""

import json
import math
import random
import threading

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    OVERFLOW_BUCKET,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition_problems,
    get_registry,
    merge_snapshots,
    metric_name,
    render_prometheus,
    set_registry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestBuckets:
    def test_bounds_are_strictly_increasing(self):
        assert all(a < b for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))

    def test_bounds_cover_the_serving_range(self):
        # Microseconds to minutes: every latency the daemon can see.
        assert BUCKET_BOUNDS[0] <= 2e-6
        assert BUCKET_BOUNDS[-1] >= 100.0

    def test_relative_error_is_bounded(self):
        # Log-linear with 4 sub-buckets per octave: the bucket upper
        # edge overestimates a value by at most ~25%.
        for bound, nxt in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert nxt / bound <= 1.26


class TestHistogramEdgeCases:
    """Satellite: the awkward inputs that break naive quantile code."""

    def test_zero_observations(self, registry):
        hist = registry.histogram("empty.seconds")
        snap = registry.snapshot()
        (entry,) = snap["histograms"]
        assert entry["count"] == 0
        assert entry["sum"] == 0.0
        assert set(entry["q"]) == {"p50", "p90", "p99", "p999"}
        assert all(v is None for v in entry["q"].values())
        assert hist.quantile(0.5) is None

    def test_single_observation(self, registry):
        registry.histogram("one.seconds").observe(0.25)
        (entry,) = registry.snapshot()["histograms"]
        assert entry["count"] == 1
        assert entry["sum"] == pytest.approx(0.25)
        # Every quantile of a single sample is that sample's bucket edge.
        values = set(entry["q"].values())
        assert len(values) == 1
        (edge,) = values
        assert 0.25 <= edge <= 0.25 * 1.26

    def test_below_first_bound_lands_in_first_bucket(self, registry):
        hist = registry.histogram("tiny.seconds")
        hist.observe(0.0)
        hist.observe(1e-12)
        hist.observe(-1.0)  # clocks can misbehave; never crash
        (entry,) = registry.snapshot()["histograms"]
        assert entry["count"] == 3
        assert entry["buckets"] == {"0": 3}
        assert hist.quantile(0.99) == BUCKET_BOUNDS[0]

    def test_above_last_bound_goes_to_overflow(self, registry):
        hist = registry.histogram("huge.seconds")
        hist.observe(10_000.0)
        (entry,) = registry.snapshot()["histograms"]
        assert entry["buckets"] == {str(OVERFLOW_BUCKET): 1}
        # Overflow quantiles report the observed max, not +Inf.
        assert hist.quantile(0.5) == 10_000.0
        assert entry["max"] == 10_000.0

    def test_quantiles_are_monotone_under_random_inputs(self, registry):
        rng = random.Random(1234)
        hist = registry.histogram("rand.seconds")
        for _ in range(2_000):
            hist.observe(rng.lognormvariate(-6.0, 2.5))
        qs = [hist.quantile(q) for q in (0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0)]
        assert all(v is not None for v in qs)
        assert qs == sorted(qs)

    def test_quantile_brackets_exact_value(self, registry):
        rng = random.Random(7)
        samples = [rng.uniform(0.001, 0.1) for _ in range(5_000)]
        hist = registry.histogram("exact.seconds")
        for s in samples:
            hist.observe(s)
        samples.sort()
        for q in (0.5, 0.9, 0.99):
            exact = samples[min(len(samples) - 1, int(q * len(samples)))]
            approx = hist.quantile(q)
            # Bucket upper edge: never below the exact value's bucket
            # lower edge, never more than one relative step above.
            assert approx >= exact / 1.26
            assert approx <= exact * 1.26


class TestMergeAlgebra:
    @staticmethod
    def _filled(seed):
        registry = MetricsRegistry()
        rng = random.Random(seed)
        for _ in range(rng.randint(5, 50)):
            registry.histogram("h.seconds", endpoint="route").observe(
                rng.lognormvariate(-7, 2)
            )
        registry.counter("c.things", kind="a").inc(rng.randint(1, 9))
        registry.gauge("g.depth").set(rng.random())
        return registry.snapshot()

    def test_merge_is_associative(self):
        a, b, c = (self._filled(s) for s in (1, 2, 3))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        # Gauges are last-wins so both orders end at c's value; counters
        # and histograms must be exactly equal either way.
        assert left == right

    def test_merge_sums_counts_and_buckets(self):
        a = self._filled(4)
        merged = merge_snapshots(a, a)
        (ha,) = a["histograms"]
        (hm,) = merged["histograms"]
        assert hm["count"] == 2 * ha["count"]
        assert hm["sum"] == pytest.approx(2 * ha["sum"])
        assert hm["buckets"] == {k: 2 * v for k, v in ha["buckets"].items()}
        (ca,), (cm,) = a["counters"], merged["counters"]
        assert cm["value"] == 2 * ca["value"]

    def test_merge_skips_none_and_empty(self):
        a = self._filled(5)
        assert merge_snapshots(a, None) == merge_snapshots(None, a)
        assert merge_snapshots() == {
            "schema": 1, "counters": [], "gauges": [], "histograms": []
        }

    def test_merge_keeps_labels_distinct(self):
        a = MetricsRegistry()
        a.counter("c", endpoint="route").inc()
        b = MetricsRegistry()
        b.counter("c", endpoint="whatif").inc()
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert len(merged["counters"]) == 2


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("x", a="1") is registry.counter("x", a="1")
        assert registry.counter("x", a="1") is not registry.counter("x", a="2")

    def test_gauge_set_overwrites(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        (entry,) = registry.snapshot()["gauges"]
        assert entry["value"] == 1.5

    def test_snapshot_is_json_serialisable(self, registry):
        registry.histogram("h.seconds").observe(0.01)
        registry.counter("c").inc()
        registry.gauge("g").set(math.pi)
        json.dumps(registry.snapshot())

    def test_concurrent_observes_lose_nothing(self, registry):
        hist = registry.histogram("hot.seconds")
        counter = registry.counter("hot.count")

        def pound():
            for _ in range(10_000):
                hist.observe(0.001)
                counter.inc()

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        (h,) = snap["histograms"]
        (c,) = snap["counters"]
        assert h["count"] == 40_000
        assert c["value"] == 40_000

    def test_process_global_swap(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestExposition:
    def test_render_is_well_formed(self, registry):
        registry.histogram(
            "serve.request.latency_seconds", endpoint="route", outcome="ok"
        ).observe(0.01)
        registry.counter("serve.requests", endpoint="route", outcome="ok").inc()
        registry.gauge("serve.queue.depth").set(0)
        text = render_prometheus(registry.snapshot())
        assert exposition_problems(text) == []
        assert 'repro_serve_request_latency_seconds_bucket{endpoint="route"' in text
        assert "repro_serve_requests_total" in text

    def test_bucket_counts_are_cumulative_and_inf_matches_count(self, registry):
        hist = registry.histogram("h.seconds")
        for v in (1e-9, 0.001, 0.01, 0.1, 1.0, 1e6):
            hist.observe(v)
        text = render_prometheus(registry.snapshot())
        assert exposition_problems(text) == []
        bucket_values = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_h_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert bucket_values[-1] == 6.0  # the +Inf bucket equals _count

    def test_label_escaping(self, registry):
        registry.counter("c", path='we"ird\\label').inc()
        text = render_prometheus(registry.snapshot())
        assert exposition_problems(text) == []
        assert '\\"' in text

    def test_metric_name_sanitisation(self):
        assert metric_name("serve.bfs.seconds") == "repro_serve_bfs_seconds"

    def test_validator_catches_garbage(self):
        assert exposition_problems("not a metric line at all{") != []
