"""Chaos tests for the worker-pool serving path.

The acceptance behaviors the supervisor exists for:

* a worker SIGKILLed mid-request is detected, the request fails with a
  retryable ``unavailable``, the supervisor respawns the worker with
  backoff, and the client's retry gets the correct answer;
* an overload burst against a tiny bounded queue is shed with 429 +
  ``Retry-After`` — never a hang, never a 500 traceback;
* SIGTERM mid-burst drains: accepted requests finish, new ones are
  refused, the process exits 0 and leaves no orphaned shared-memory
  segment behind.

Workers are real ``spawn`` processes, so this module is the slowest
test file in the suite; everything else exercises the same request
contract inline (``test_serve_service.py``).
"""

import glob
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core import AbcccSpec
from repro.serve import (
    HTTPFrontEnd,
    ServeClient,
    ServeConfig,
    ServeError,
    TopologyService,
)
from repro.topology import shm

SPAWN_TIMEOUT_S = 120.0


@pytest.fixture(scope="module")
def graph():
    return AbcccSpec(3, 1, 2).compiled()


def start_service(graph, **overrides):
    defaults = dict(
        workers=1,
        queue_bound=8,
        spawn_timeout_s=SPAWN_TIMEOUT_S,
        backoff_base_s=0.05,
        backoff_max_s=0.5,
        default_deadline_s=30.0,
    )
    defaults.update(overrides)
    service = TopologyService(graph, ServeConfig(**defaults), label="chaos")
    service.start()
    assert service.wait_ready(SPAWN_TIMEOUT_S), "workers never became ready"
    return service


def worker_pids(service):
    return [
        agent.process.pid
        for agent in service.supervisor.agents
        if agent.process is not None
    ]


class TestWorkerCrash:
    def test_sigkill_mid_request_retry_recovers(self, graph):
        service = start_service(graph, workers=1)
        front = HTTPFrontEnd(service, port=0)
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(
            port=front.port, retries=6, backoff_base_s=0.05, timeout_s=60, seed=11
        )
        try:
            expected = client.route("0", "17")
            assert expected["status"] == "ok"

            # Freeze the only worker so the next request is pinned
            # mid-flight, then SIGKILL it while it holds the request.
            pid = worker_pids(service)[0]
            os.kill(pid, signal.SIGSTOP)
            outcome = {}

            def query():
                outcome["result"] = client.route("0", "17")
                outcome["attempts"] = client.last_attempts

            worker_thread = threading.Thread(target=query)
            worker_thread.start()
            time.sleep(0.4)  # request is now in the worker's pipe
            os.kill(pid, signal.SIGKILL)
            worker_thread.join(timeout=SPAWN_TIMEOUT_S)
            assert not worker_thread.is_alive(), "retry never completed"

            assert outcome["result"]["link_hops"] == expected["link_hops"]
            assert outcome["attempts"] >= 2, "recovery must come from a retry"
            deadline = time.monotonic() + SPAWN_TIMEOUT_S
            while time.monotonic() < deadline and service.supervisor.alive_workers < 1:
                time.sleep(0.05)
            assert service.supervisor.alive_workers == 1
            assert service.supervisor.restart_count >= 1
            assert service.stats()["counters"].get("worker_lost", 0) >= 1
        finally:
            client.close()
            service.drain_and_stop()
            front.shutdown()
            front.close()
            thread.join(timeout=10)
        assert shm.owned_segments() == ()


class TestWorkerTelemetry:
    """Worker-side metrics merge into the parent and survive restarts;
    one request's trace stitches across a crash + retry."""

    def test_metrics_and_trace_survive_worker_crash(self, graph, tmp_path):
        from repro.obs import trace as obs_trace
        from repro.obs.metrics import MetricsRegistry, set_registry
        from repro.obs.report import load_trace, report_trace_id, trace_spans

        trace_path = str(tmp_path / "chaos.trace.jsonl")
        # The tracer must exist before the workers spawn: it exports
        # the shard env var the spawned workers adopt.
        tracer = obs_trace.Tracer(path=trace_path)
        previous_tracer = obs_trace.set_tracer(tracer)
        registry = MetricsRegistry()
        previous_registry = set_registry(registry)
        service = None
        front = None
        thread = None
        client = None
        try:
            service = TopologyService(
                graph,
                ServeConfig(
                    workers=1,
                    queue_bound=8,
                    spawn_timeout_s=SPAWN_TIMEOUT_S,
                    backoff_base_s=0.05,
                    backoff_max_s=0.5,
                    default_deadline_s=30.0,
                ),
                label="chaos-telemetry",
                registry=registry,
            )
            service.start()
            assert service.wait_ready(SPAWN_TIMEOUT_S)
            front = HTTPFrontEnd(service, port=0)
            thread = threading.Thread(target=front.serve_forever, daemon=True)
            thread.start()
            client = ServeClient(
                port=front.port, retries=6, backoff_base_s=0.05,
                timeout_s=60, seed=23,
            )

            # -- healthy requests: worker-side metrics merge over the pipe
            for _ in range(3):
                assert client.route("0", "17")["status"] == "ok"
            snap = service.metrics_snapshot()

            def count_of(name, **labels):
                return sum(
                    h["count"]
                    for h in snap["histograms"]
                    if h["name"] == name
                    and all(h["labels"].get(k) == v for k, v in labels.items())
                )

            # observed IN the worker process, merged into the parent
            assert count_of(
                "serve.execute.latency_seconds", endpoint="route", outcome="ok"
            ) == 3
            assert count_of("serve.bfs.seconds", op="route") == 3
            # observed in the parent around the queue hand-off
            assert count_of("serve.queue.wait_seconds", endpoint="route") == 3
            gauges = {
                (g["name"], tuple(sorted(g["labels"].items()))): g["value"]
                for g in snap["gauges"]
            }
            assert gauges[("serve.worker.alive", (("slot", "0"),))] == 1
            stats = service.stats()
            rss = stats["workers"]["peak_rss_mb"]
            assert rss and rss["pool_total"] > 0
            assert stats["memory"]["pool_total_mb"] > 0

            # -- SIGKILL the worker mid-request; the retry must recover
            pid = worker_pids(service)[0]
            os.kill(pid, signal.SIGSTOP)
            outcome = {}

            def query():
                outcome["result"] = client.route("0", "17")
                outcome["attempts"] = client.last_attempts
                outcome["trace_id"] = client.last_trace_id

            worker_thread = threading.Thread(target=query)
            worker_thread.start()
            time.sleep(0.4)
            os.kill(pid, signal.SIGKILL)
            worker_thread.join(timeout=SPAWN_TIMEOUT_S)
            assert not worker_thread.is_alive(), "retry never completed"
            assert outcome["result"]["status"] == "ok"
            assert outcome["attempts"] >= 2

            # -- counts survived the restart: the dead worker's snapshot
            # was folded into the retired pile, the new worker adds one
            snap = service.metrics_snapshot()
            assert count_of(
                "serve.execute.latency_seconds", endpoint="route", outcome="ok"
            ) >= 4
            restarts = sum(
                c["value"]
                for c in snap["counters"]
                if c["name"] == "serve.worker.restarts"
            )
            assert restarts >= 1
            trace_id = outcome["trace_id"]
            new_pid = worker_pids(service)[0]
            assert new_pid != pid
        finally:
            if client is not None:
                client.close()
            if service is not None:
                service.drain_and_stop()
            if front is not None:
                front.shutdown()
                front.close()
            if thread is not None:
                thread.join(timeout=10)
            set_registry(previous_registry)
            obs_trace.set_tracer(previous_tracer)
            tracer.close()  # merges the worker shards into the main file
        assert shm.owned_segments() == ()

        # -- the whole story of the retried request under one trace id
        spans = trace_spans(load_trace(trace_path), trace_id)
        names = [s["name"] for s in spans]
        assert "serve.client.request" in names
        assert names.count("serve.queue") >= 2, names  # one per attempt
        executed = [s for s in spans if s["name"] == "serve.execute"]
        assert executed, names
        # the execution that answered ran in the *respawned* worker
        assert any(s["pid"] == new_pid for s in executed)
        (client_span,) = [s for s in spans if s["name"] == "serve.client.request"]
        assert client_span["tags"]["attempts"] >= 2
        text, count = report_trace_id([trace_path], trace_id)
        assert count == len(spans)
        assert f"{len(spans)} span(s)" in text


class TestOverloadShed:
    def test_burst_sheds_with_retry_after_never_hangs(self, graph):
        service = start_service(graph, workers=1, queue_bound=1)
        front = HTTPFrontEnd(service, port=0)
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        pid = worker_pids(service)[0]
        results = []
        threads = []
        try:
            # Freeze the worker: the first request occupies it, the
            # second fills the one queue slot, the rest must shed.
            os.kill(pid, signal.SIGSTOP)

            def query(slot):
                c = ServeClient(
                    port=front.port, retries=0, timeout_s=60, seed=slot
                )
                try:
                    results.append(("ok", c.route("0", "17")["status"]))
                except ServeError as error:
                    results.append((error.code, error.retry_after_s))
                finally:
                    c.close()

            for slot in range(5):
                t = threading.Thread(target=query, args=(slot,))
                t.start()
                threads.append(t)
                time.sleep(0.2)  # deterministic arrival order

            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and sum(
                1 for code, _ in results if code == "overload"
            ) < 3:
                time.sleep(0.05)
            os.kill(pid, signal.SIGCONT)
            for t in threads:
                t.join(timeout=SPAWN_TIMEOUT_S)
                assert not t.is_alive(), "a shed request hung"

            shed = [extra for code, extra in results if code == "overload"]
            served = [extra for code, extra in results if code == "ok"]
            assert len(served) == 2, results
            assert len(shed) == 3, results
            for retry_after in shed:
                assert retry_after is not None and retry_after > 0
            assert not any(code == "internal" for code, _ in results)
            assert service.stats()["counters"]["shed_overload"] == 3
        finally:
            try:
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            service.drain_and_stop()
            front.shutdown()
            front.close()
            thread.join(timeout=10)
        assert shm.owned_segments() == ()

    def test_shed_responses_carry_retry_after_header(self, graph):
        service = start_service(graph, workers=1, queue_bound=1)
        front = HTTPFrontEnd(service, port=0)
        thread = threading.Thread(target=front.serve_forever, daemon=True)
        thread.start()
        pid = worker_pids(service)[0]
        try:
            os.kill(pid, signal.SIGSTOP)
            blockers = []
            for slot in range(2):
                t = threading.Thread(
                    target=lambda: ServeClient(
                        port=front.port, retries=0, timeout_s=60
                    ).route("0", "17"),
                    daemon=True,
                )
                t.start()
                blockers.append(t)
                time.sleep(0.2)
            import http.client

            conn = http.client.HTTPConnection("127.0.0.1", front.port, timeout=10)
            conn.request(
                "POST",
                "/route",
                body=json.dumps({"src": "0", "dst": "17"}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = response.read()
            assert response.status == 429
            assert response.getheader("Retry-After") is not None
            assert b"Traceback" not in body
            conn.close()
        finally:
            try:
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            for t in blockers:
                t.join(timeout=SPAWN_TIMEOUT_S)
            service.drain_and_stop()
            front.shutdown()
            front.close()
            thread.join(timeout=10)
        assert shm.owned_segments() == ()


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/*repro*"))


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs /dev/shm to observe leaks"
)
class TestDaemonSigterm:
    def test_sigterm_mid_burst_drains_cleanly(self, graph, tmp_path):
        # The __main__ guard is mandatory: workers use the `spawn`
        # start method, which re-imports the main module in the child.
        launcher = tmp_path / "serve_daemon.py"
        launcher.write_text(
            "import sys\n"
            "from repro.cli import main\n"
            'if __name__ == "__main__":\n'
            "    sys.exit(main(sys.argv[1:]))\n"
        )
        ready_file = tmp_path / "ready.json"
        before = _shm_segments()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath("src"), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                str(launcher),
                "serve",
                "abccc",
                "-p", "n=3", "-p", "k=1", "-p", "s=2",
                "--workers", "1",
                "--port", "0",
                "--ready-file", str(ready_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + SPAWN_TIMEOUT_S
            while time.monotonic() < deadline and not ready_file.exists():
                assert proc.poll() is None, proc.communicate()[1]
                time.sleep(0.1)
            assert ready_file.exists(), "daemon never wrote the ready file"
            port = json.loads(ready_file.read_text())["port"]

            outcomes = []

            def query(slot):
                c = ServeClient(port=port, retries=0, timeout_s=60, seed=slot)
                try:
                    outcomes.append(("ok", c.route("0", "17")["link_hops"]))
                except ServeError as error:
                    outcomes.append((error.code, None))
                except OSError:
                    outcomes.append(("transport", None))
                finally:
                    c.close()

            # One synchronous request before the signal: on a loaded
            # machine the threaded burst can land entirely after the
            # drain starts, so this is what guarantees at least one
            # "ok" outcome deterministically.
            query(0)
            assert outcomes and outcomes[0][0] == "ok", outcomes

            threads = [
                threading.Thread(target=query, args=(slot,)) for slot in range(6)
            ]
            for t in threads[:3]:
                t.start()
            proc.send_signal(signal.SIGTERM)  # mid-burst
            for t in threads[3:]:
                t.start()
            for t in threads:
                t.join(timeout=SPAWN_TIMEOUT_S)
                assert not t.is_alive(), "a request hung across the drain"

            stdout, stderr = proc.communicate(timeout=SPAWN_TIMEOUT_S)
            assert proc.returncode == 0, stderr
            assert "drained and stopped" in stdout
            assert "Traceback" not in stderr
            # Every request either completed correctly or was refused
            # with the drain/shutdown taxonomy — nothing hung, nothing
            # got an internal error.
            assert outcomes, "no request outcomes recorded"
            assert all(
                code in ("ok", "unavailable", "overload", "transport")
                for code, _ in outcomes
            ), outcomes
            assert any(code == "ok" for code, _ in outcomes), outcomes
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        leaked = _shm_segments() - before
        assert not leaked, f"daemon leaked shm segments: {leaked}"
