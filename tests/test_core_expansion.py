"""Expansion planning: the pure-addition property and the baselines' pain."""

import pytest

from repro.core import properties
from repro.core.address import AbcccParams
from repro.core.expansion import (
    ExpansionError,
    abccc_embed,
    apply_plan,
    plan_abccc_growth,
    plan_bccc_growth,
    plan_bcube_growth,
    plan_expansion,
    plan_fattree_growth,
)
from repro.core.topology import AbcccSpec


class TestAbcccGrowth:
    @pytest.mark.parametrize(
        "n,k,s", [(3, 1, 2), (4, 2, 2), (4, 1, 3), (3, 1, 3), (4, 2, 3)]
    )
    def test_pure_addition(self, n, k, s):
        """Growth is pure addition whenever the grown crossbar still fits
        the n-port crossbar switch (c_new <= n)."""
        plan = plan_abccc_growth(n, k, s)
        assert plan.is_pure_addition
        assert plan.upgraded_servers == ()
        assert plan.replaced_switches == ()
        assert plan.removed_links == ()

    def test_crossbar_outgrowing_radix_replaces_crossbar_switches(self):
        """The boundary of the expandability claim: once k + 1 exceeds n
        (at s = 2), crossbars outgrow the n-port crossbar switch and the
        step is no longer pure addition."""
        plan = plan_abccc_growth(3, 2, 2)  # c: 3 -> 4 > n = 3
        assert not plan.is_pure_addition
        assert len(plan.replaced_switches) == 3**3  # every old crossbar switch
        assert plan.upgraded_servers == ()  # servers still untouched

    def test_component_counts_match_formulas(self):
        n, k, s = 3, 1, 2
        old = AbcccParams(n, k, s)
        new = AbcccParams(n, k + 1, s)
        plan = plan_abccc_growth(n, k, s)
        assert len(plan.new_servers) == properties.num_servers(new) - properties.num_servers(old)
        assert len(plan.new_switches) == properties.num_switches(new) - properties.num_switches(old)
        assert len(plan.new_links) == properties.num_links(new) - properties.num_links(old)

    def test_spare_port_growth_adds_no_server_to_old_crossbars(self):
        """s=3, k=2 -> k=3: level 3 uses the last server's spare port, so
        old crossbars gain cables but no servers."""
        plan = plan_abccc_growth(4, 2, 3)
        old_slice_new_servers = [
            name for name in plan.new_servers if name.startswith("s0.")
        ]
        assert old_slice_new_servers == []
        assert plan.is_pure_addition

    def test_crossbar_growth_adds_server_when_ports_exhausted(self):
        """s=2: every growth step adds one server to each old crossbar."""
        n, k = 3, 1
        plan = plan_abccc_growth(n, k, 2)
        # Old crossbars are the x_{k+1} = 0 slice; each gains server /2.
        gained = [
            name
            for name in plan.new_servers
            if name.startswith("s0.") and name.endswith("/2")
        ]
        assert len(gained) == n ** (k + 1)

    def test_applying_plan_reconstructs_new_network(self):
        """Old components (embedded) + new components == new network."""
        old = AbcccSpec(3, 1, 2)
        new = AbcccSpec(3, 2, 2)
        plan = plan_abccc_growth(3, 1, 2)
        old_net, new_net = old.build(), new.build()
        embedded_nodes = {abccc_embed(n) for n in old_net.node_names()}
        assert embedded_nodes | set(plan.new_servers) | set(plan.new_switches) == set(
            new_net.node_names()
        )
        from repro.topology.node import link_key

        embedded_links = {
            link_key(abccc_embed(l.u), abccc_embed(l.v)) for l in old_net.links()
        }
        assert embedded_links | set(plan.new_links) == {l.key for l in new_net.links()}


class TestBaselineGrowth:
    def test_bcube_upgrades_every_server(self):
        n, k = 3, 1
        plan = plan_bcube_growth(n, k)
        assert not plan.is_pure_addition
        assert len(plan.upgraded_servers) == n ** (k + 1)  # all old servers

    def test_bccc_matches_abccc_s2(self):
        bccc = plan_bccc_growth(3, 1).summary()
        abccc = plan_abccc_growth(3, 1, 2).summary()
        assert bccc == abccc

    def test_fattree_replaces_every_switch(self):
        p = 4
        plan = plan_fattree_growth(p)
        assert not plan.is_pure_addition
        assert len(plan.replaced_switches) == 5 * p**2 // 4  # the whole fabric

    def test_fattree_keeps_existing_cables(self):
        plan = plan_fattree_growth(4)
        assert plan.removed_links == ()


class TestApplyPlan:
    def _assert_equal_networks(self, built, applied):
        assert set(applied.node_names()) == set(built.node_names())
        assert {l.key for l in applied.links()} == {l.key for l in built.links()}
        for name in built.node_names():
            assert applied.node(name).kind == built.node(name).kind
            assert applied.node(name).ports == built.node(name).ports

    @pytest.mark.parametrize("n,k,s", [(3, 1, 2), (4, 1, 3), (2, 1, 2)])
    def test_abccc_plan_is_executable(self, n, k, s):
        """Applying the plan to the old build reproduces the new build."""
        old = AbcccSpec(n, k, s)
        new = AbcccSpec(n, k + 1, s)
        plan = plan_abccc_growth(n, k, s)
        applied = apply_plan(old.build(), plan, abccc_embed)
        self._assert_equal_networks(new.build(), applied)

    def test_applied_network_conforms(self):
        from repro.core.address import AbcccParams
        from repro.core.conformance import check_abccc

        plan = plan_abccc_growth(3, 1, 2)
        applied = apply_plan(AbcccSpec(3, 1, 2).build(), plan, abccc_embed)
        check_abccc(applied, AbcccParams(3, 2, 2))

    def test_bcube_plan_applies_with_upgrades(self):
        from repro.baselines.bcube import BcubeSpec, bcube_embed

        plan = plan_bcube_growth(3, 1)
        applied = apply_plan(BcubeSpec(3, 1).build(), plan, bcube_embed)
        self._assert_equal_networks(BcubeSpec(3, 2).build(), applied)

    def test_fattree_plan_applies_with_replacements(self):
        from repro.baselines.fattree import FatTreeSpec, fattree_embed

        plan = plan_fattree_growth(4)
        applied = apply_plan(FatTreeSpec(4).build(), plan, fattree_embed)
        self._assert_equal_networks(FatTreeSpec(6).build(), applied)

    def test_boundary_plan_applies_switch_replacement(self):
        """Even the non-pure boundary step (crossbar switch swap) is
        executable."""
        plan = plan_abccc_growth(3, 2, 2)
        applied = apply_plan(AbcccSpec(3, 2, 2).build(), plan, abccc_embed)
        self._assert_equal_networks(AbcccSpec(3, 3, 2).build(), applied)


class TestPlanMechanics:
    def test_summary_keys(self):
        summary = plan_abccc_growth(2, 1, 2).summary()
        assert set(summary) == {
            "new_servers",
            "new_switches",
            "new_cables",
            "removed_cables",
            "upgraded_servers",
            "replaced_switches",
            "recabled_existing",
        }

    def test_num_new_components(self):
        plan = plan_abccc_growth(2, 1, 2)
        assert plan.num_new_components == (
            len(plan.new_servers) + len(plan.new_switches) + len(plan.new_links)
        )

    def test_embed_rejects_garbage(self):
        with pytest.raises(ExpansionError):
            abccc_embed("zork")

    def test_shrinking_rejected(self):
        with pytest.raises(ExpansionError, match="no place"):
            plan_expansion(AbcccSpec(3, 2, 2), AbcccSpec(3, 1, 2), abccc_embed)

    def test_colliding_embedding_rejected(self):
        with pytest.raises(ExpansionError, match="collides"):
            plan_expansion(
                AbcccSpec(2, 1, 2), AbcccSpec(2, 2, 2), lambda name: "s0.0.0/0"
            )
