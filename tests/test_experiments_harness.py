"""Harness plumbing: registration rules, runner output, CSV writing."""

import os

import pytest

from repro.experiments import all_experiments, run_all, run_experiment
from repro.experiments.harness import Experiment, register


class TestRegistration:
    def test_duplicate_id_rejected(self):
        all_experiments()  # ensure the built-ins are registered first
        with pytest.raises(ValueError, match="already registered"):
            register("T1", "imposter", "nothing")(lambda quick: [])

    def test_experiment_objects_are_frozen(self):
        experiment = all_experiments()[0]
        with pytest.raises(AttributeError):
            experiment.title = "renamed"

    def test_ordering_groups_then_numbers(self):
        ids = [e.exp_id for e in all_experiments()]
        groups = [i[0] for i in ids]
        # T block, then F block, then E block — no interleaving.
        assert groups == sorted(groups, key=lambda g: {"T": 0, "F": 1, "E": 2}[g])
        for kind in "TFE":
            numbers = [int(i[1:]) for i in ids if i[0] == kind]
            assert numbers == sorted(numbers)


class TestRunner:
    def test_run_experiment_prints_and_writes(self, capsys, tmp_path):
        tables = run_experiment("F2", quick=True, out_dir=str(tmp_path))
        out = capsys.readouterr().out
        assert "### F2" in out
        assert "expectation:" in out
        assert "finished in" in out
        written = sorted(os.listdir(tmp_path))
        assert len(written) == len(tables)
        assert all(name.startswith("f2") and name.endswith(".csv") for name in written)

    def test_quiet_mode(self, capsys, tmp_path):
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        assert capsys.readouterr().out == ""

    def test_no_csv_when_out_dir_none(self, capsys):
        tables = run_experiment("F11", quick=True, out_dir=None, verbose=False)
        assert tables  # ran fine, nothing persisted

    def test_single_table_filename_has_no_suffix(self, tmp_path):
        run_experiment("F5", quick=True, out_dir=str(tmp_path), verbose=False)
        assert (tmp_path / "f5.csv").exists()

    def test_multi_table_filenames_numbered(self, tmp_path):
        run_experiment("T1", quick=True, out_dir=str(tmp_path), verbose=False)
        assert (tmp_path / "t1_0.csv").exists()
        assert (tmp_path / "t1_1.csv").exists()

    def test_execute_does_not_write(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        from repro.experiments import get_experiment

        get_experiment("F11").execute(quick=True)
        assert os.listdir(tmp_path) == []
