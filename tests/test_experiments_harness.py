"""Harness plumbing: registration rules, runner output, CSV writing."""

import os

import pytest

from repro.experiments import all_experiments, run_all, run_experiment
from repro.experiments.harness import Experiment, register


class TestRegistration:
    def test_duplicate_id_rejected(self):
        all_experiments()  # ensure the built-ins are registered first
        with pytest.raises(ValueError, match="already registered"):
            register("T1", "imposter", "nothing")(lambda quick: [])

    def test_experiment_objects_are_frozen(self):
        experiment = all_experiments()[0]
        with pytest.raises(AttributeError):
            experiment.title = "renamed"

    def test_ordering_groups_then_numbers(self):
        ids = [e.exp_id for e in all_experiments()]
        groups = [i[0] for i in ids]
        # T block, then F block, then E block — no interleaving.
        assert groups == sorted(groups, key=lambda g: {"T": 0, "F": 1, "E": 2}[g])
        for kind in "TFE":
            numbers = [int(i[1:]) for i in ids if i[0] == kind]
            assert numbers == sorted(numbers)


class TestRunner:
    def test_run_experiment_prints_and_writes(self, capsys, tmp_path):
        tables = run_experiment("F2", quick=True, out_dir=str(tmp_path))
        captured = capsys.readouterr()
        assert "### F2" in captured.out
        assert "expectation:" in captured.out
        # Progress lines ride the stderr logger; stdout stays table-clean.
        assert "finished in" not in captured.out
        written = sorted(os.listdir(tmp_path))
        # One CSV per table plus the cumulative runtime log.
        assert len(written) == len(tables) + 1
        assert "runtimes.csv" in written
        tables_csvs = [name for name in written if name != "runtimes.csv"]
        assert all(
            name.startswith("f2") and name.endswith(".csv") for name in tables_csvs
        )

    def test_quiet_mode(self, capsys, tmp_path):
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        assert capsys.readouterr().out == ""

    def test_no_csv_when_out_dir_none(self, capsys):
        tables = run_experiment("F11", quick=True, out_dir=None, verbose=False)
        assert tables  # ran fine, nothing persisted

    def test_single_table_filename_has_no_suffix(self, tmp_path):
        run_experiment("F5", quick=True, out_dir=str(tmp_path), verbose=False)
        assert (tmp_path / "f5.csv").exists()

    def test_runtimes_csv_one_row_per_key(self, tmp_path):
        import csv

        from repro.experiments.harness import RUNTIMES_COLUMNS

        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False, workers=2)
        with open(tmp_path / "runtimes.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(RUNTIMES_COLUMNS)
        assert len(rows) == 3  # header + one row per distinct key
        first, second = rows[1], rows[2]
        assert first[:3] == ["F11", "1", "1"]
        assert second[:3] == ["F11", "1", "2"]
        assert all(float(row[3]) >= 0.0 for row in rows[1:])

    def test_runtimes_csv_rerun_replaces_row(self, tmp_path):
        import csv

        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        with open(tmp_path / "runtimes.csv", newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 2  # header + the single deduped row

    def test_runtimes_csv_upgrades_legacy_header(self, tmp_path):
        import csv

        legacy = tmp_path / "runtimes.csv"
        legacy.write_text(
            "experiment,quick,workers,wall_time_s\nF8,0,1,0.604\nF11,1,1,0.002\n"
        )
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        with open(legacy, newline="") as handle:
            rows = list(csv.reader(handle))
        from repro.experiments.harness import RUNTIMES_COLUMNS

        assert rows[0] == list(RUNTIMES_COLUMNS)
        by_key = {(r[0], r[1], r[2]): r for r in rows[1:]}
        # The legacy F8 row survives (padded), the F11 row was replaced.
        assert by_key[("F8", "0", "1")][3] == "0.604"
        assert float(by_key[("F11", "1", "1")][3]) >= 0.0
        assert len(rows) == 3

    def test_workers_default_restored_after_run(self, tmp_path):
        from repro.metrics.engine import get_default_workers

        before = get_default_workers()
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False, workers=3)
        assert get_default_workers() == before

    def test_multi_table_filenames_numbered(self, tmp_path):
        run_experiment("T1", quick=True, out_dir=str(tmp_path), verbose=False)
        assert (tmp_path / "t1_0.csv").exists()
        assert (tmp_path / "t1_1.csv").exists()

    def test_execute_does_not_write(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        from repro.experiments import get_experiment

        get_experiment("F11").execute(quick=True)
        assert os.listdir(tmp_path) == []
