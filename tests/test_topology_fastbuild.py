"""Vectorized direct-to-CSR constructors: parity, boundaries, integration."""

import pickle

import numpy as np
import pytest

from repro.baselines import BcccSpec, BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.core.address import AddressError
from repro.faults.mask import MaskedGraph
from repro.faults.plan import FailureScenario
from repro.metrics.engine import pairwise_distances
from repro.obs import trace as obs_trace
from repro.obs.report import load_trace
from repro.topology import fastbuild
from repro.topology.compiled import CompiledGraph, build_compiled, compile_graph
from repro.topology.fastbuild import (
    KIND_CROSSBAR_SWITCH,
    KIND_LEVEL_SWITCH,
    KIND_SERVER,
    FastBuildError,
    FastCompiledGraph,
    fast_compiled,
    layout_for,
)
from repro.topology.validate import (
    ValidationError,
    assert_csr_parity,
    csr_parity_problems,
)

#: one spec per structural regime of every fast family — the parity net.
PARITY_SPECS = [
    AbcccSpec(4, 3, 2),  # the paper's running example
    AbcccSpec(3, 2, 3),  # multi-level owners (s - 1 = 2)
    AbcccSpec(4, 1, 3),  # s >= k + 2: BCube-degenerate crossbars of one
    AbcccSpec(2, 0, 2),  # minimal: single level, n = 2
    AbcccSpec(4, 2, 4),  # s > levels: last owner underfilled
    BcccSpec(3, 1),
    BcccSpec(4, 0),  # degenerate single-level star
    BcccSpec(2, 2),
    BcubeSpec(4, 1),
    BcubeSpec(3, 0),  # single-switch BCube level
    BcubeSpec(2, 3),
]


def _ids(specs):
    return [spec.label for spec in specs]


class TestParity:
    @pytest.mark.parametrize("spec", PARITY_SPECS, ids=_ids(PARITY_SPECS))
    def test_fast_graph_matches_oracle_exactly(self, spec):
        graph = fast_compiled(spec)
        net = spec.build()
        assert isinstance(graph, FastCompiledGraph)
        assert_csr_parity(graph, net)

    @pytest.mark.parametrize("spec", PARITY_SPECS[:3], ids=_ids(PARITY_SPECS[:3]))
    def test_csr_bytes_identical(self, spec):
        """Beyond set equality: the raw arrays match element for element."""
        graph = fast_compiled(spec)
        oracle = compile_graph(spec.build())
        for attr in ("offsets", "neighbors", "server_indices", "edge_u", "edge_v"):
            fast_arr = np.asarray(getattr(graph, attr))
            oracle_arr = np.asarray(getattr(oracle, attr))
            assert fast_arr.dtype == oracle_arr.dtype == np.uint32, attr
            assert np.array_equal(fast_arr, oracle_arr), attr

    def test_parity_helper_reports_injected_corruption(self):
        spec = AbcccSpec(3, 1, 2)
        graph = fast_compiled(spec)
        net = spec.build()
        assert csr_parity_problems(graph, net) == []
        graph.neighbors[0], graph.neighbors[1] = graph.neighbors[1], graph.neighbors[0]
        problems = csr_parity_problems(graph, net)
        assert any("neighbor" in p for p in problems)
        with pytest.raises(ValidationError):
            assert_csr_parity(graph, net)

    def test_counts_match_spec_closed_forms(self):
        for spec in PARITY_SPECS:
            layout = layout_for(spec)
            assert layout.num_servers == spec.num_servers, spec.label
            assert layout.num_switches == spec.num_switches, spec.label
            assert layout.num_edges == spec.num_links, spec.label


class TestDispatch:
    def test_build_compiled_prefers_fast_path(self):
        graph = build_compiled(AbcccSpec(3, 1, 2))
        assert isinstance(graph, FastCompiledGraph)

    def test_prefer_fast_false_is_the_object_oracle(self):
        graph = build_compiled(AbcccSpec(3, 1, 2), prefer_fast=False)
        assert isinstance(graph, CompiledGraph)
        assert not isinstance(graph, FastCompiledGraph)

    def test_unsupported_family_falls_back(self):
        spec = FatTreeSpec(4)
        assert not fastbuild.supports(spec)
        graph = build_compiled(spec)
        assert not isinstance(graph, FastCompiledGraph)
        assert graph.num_servers == spec.num_servers

    def test_fast_compiled_rejects_unsupported_spec(self):
        with pytest.raises(FastBuildError):
            fast_compiled(FatTreeSpec(4))

    def test_spec_compiled_method_uses_seam(self):
        spec = AbcccSpec(3, 1, 2)
        assert isinstance(spec.compiled(), FastCompiledGraph)
        assert not isinstance(
            spec.compiled(prefer_fast=False), FastCompiledGraph
        )


class TestBoundarySpecs:
    """Degenerate corners go through the fast path or fail identically."""

    def test_k0_single_level_cube(self):
        assert_csr_parity(fast_compiled(AbcccSpec(2, 0, 2)), AbcccSpec(2, 0, 2).build())
        assert_csr_parity(fast_compiled(AbcccSpec(5, 0, 3)), AbcccSpec(5, 0, 3).build())

    def test_k1_minimal_multilevel(self):
        spec = AbcccSpec(2, 1, 2)
        assert_csr_parity(fast_compiled(spec), spec.build())

    def test_n2_smallest_radix(self):
        for spec in (AbcccSpec(2, 2, 2), BcccSpec(2, 1), BcubeSpec(2, 1)):
            assert_csr_parity(fast_compiled(spec), spec.build())

    def test_single_switch_bcube(self):
        spec = BcubeSpec(3, 0)
        graph = fast_compiled(spec)
        assert graph.num_nodes == 4  # 3 servers + 1 switch
        assert_csr_parity(graph, spec.build())

    def test_invalid_params_raise_before_either_path(self):
        # Validation lives on the shared parameter objects, so the fast
        # path can never accept a spec the object builder would reject.
        with pytest.raises(AddressError):
            AbcccSpec(1, 2, 2)
        with pytest.raises(AddressError):
            AbcccSpec(3, -1, 2)
        with pytest.raises(AddressError):
            AbcccSpec(3, 2, 1)
        with pytest.raises(AddressError):
            BcccSpec(1, 1)
        with pytest.raises(ValueError):
            BcubeSpec(1, 1)

    def test_oversized_spec_refused(self):
        spec = AbcccSpec(2, 40, 2)  # 2^41 crossbars: beyond uint32 ids
        with pytest.raises(FastBuildError):
            fast_compiled(spec)


class TestLazyTables:
    def test_names_is_a_sequence_view(self):
        spec = AbcccSpec(3, 1, 2)
        graph = fast_compiled(spec)
        oracle_names = list(compile_graph(spec.build()).names)
        names = graph.names
        assert len(names) == len(oracle_names)
        assert list(names) == oracle_names
        assert names[0] == oracle_names[0]
        assert names[-1] == oracle_names[-1]
        assert names[2:5] == oracle_names[2:5]
        assert oracle_names[3] in names
        assert "no-such-node" not in names

    def test_index_is_a_mapping_view(self):
        spec = BcccSpec(3, 1)
        graph = fast_compiled(spec)
        index = graph.index
        for i, name in enumerate(graph.names):
            assert index[name] == i
            assert index.get(name) == i
            assert name in index
        assert index.get("bogus") is None
        assert "bogus" not in index
        with pytest.raises(KeyError):
            index["s9.9.9/9"]
        assert len(index) == graph.num_nodes
        assert dict(index.items()) == {n: i for i, n in enumerate(graph.names)}

    def test_index_rejects_out_of_range_addresses(self):
        graph = fast_compiled(AbcccSpec(3, 1, 2))
        for name in ("s3.0/0", "s0.0/7", "l2:0", "c9.9", "x0.0"):
            assert graph.index.get(name) is None

    def test_kind_tables(self):
        spec = AbcccSpec(3, 2, 2)
        graph = fast_compiled(spec)
        net = spec.build()
        kinds = graph.node_kind_table()
        for i, name in enumerate(graph.names):
            node = net.node(name)
            if node.is_server:
                expected = KIND_SERVER
            elif node.role == "crossbar":
                expected = KIND_CROSSBAR_SWITCH
            else:
                expected = KIND_LEVEL_SWITCH
            assert graph.kind_code(i) == expected
            assert int(kinds[i]) == expected
            assert graph.is_server(i) == node.is_server


class TestGraphBehaviour:
    def test_bfs_matches_oracle(self):
        spec = AbcccSpec(3, 2, 2)
        graph = fast_compiled(spec)
        oracle = compile_graph(spec.build())
        for src in [0, 5, graph.num_nodes - 1]:
            assert np.array_equal(graph.bfs_distances(src), oracle.bfs_distances(src))

    def test_pairwise_distances_engine_integration(self):
        spec = BcubeSpec(3, 1)
        graph = fast_compiled(spec)
        oracle = compile_graph(spec.build())
        servers = [int(i) for i in graph.server_indices]
        pairs = [(servers[0], s) for s in servers[1:]]
        assert pairwise_distances(graph, pairs) == pairwise_distances(oracle, pairs)

    def test_masked_graph_integration(self):
        spec = AbcccSpec(3, 2, 2)
        graph = fast_compiled(spec)
        net = spec.build()
        oracle = compile_graph(net)
        link = next(net.links())
        scenario = FailureScenario(
            dead_servers=tuple(net.servers[::7]),
            dead_switches=("l0:0.0", "c1.0.2"),
            dead_links=((link.u, link.v),),
        )
        fast_masked = MaskedGraph(graph, scenario)
        oracle_masked = MaskedGraph(oracle, scenario)
        assert fast_masked.num_alive_servers() == oracle_masked.num_alive_servers()
        assert fast_masked.alive_servers() == oracle_masked.alive_servers()
        assert fast_masked.largest_component_fraction() == pytest.approx(
            oracle_masked.largest_component_fraction()
        )
        assert fast_masked.connection_ratio(sample_pairs=50) == pytest.approx(
            oracle_masked.connection_ratio(sample_pairs=50)
        )

    def test_pickle_roundtrip(self):
        spec = AbcccSpec(3, 1, 2)
        graph = fast_compiled(spec)
        clone = pickle.loads(pickle.dumps(graph))
        assert isinstance(clone, FastCompiledGraph)
        assert clone.layout == graph.layout
        assert list(clone.names) == list(graph.names)
        assert np.array_equal(clone.offsets, graph.offsets)
        assert np.array_equal(
            clone.bfs_distances(0), graph.bfs_distances(0)
        )

    def test_edge_capacity_is_lazy_units(self):
        graph = fast_compiled(AbcccSpec(3, 1, 2))
        assert graph._capacity is None
        capacity = graph.edge_capacity
        assert capacity.shape == (graph.num_edges,)
        assert np.all(capacity == 1.0)


class TestMemmap:
    def test_memmap_mode_is_parity_equal(self, tmp_path):
        spec = AbcccSpec(3, 2, 2)
        graph = fast_compiled(spec, memmap_dir=str(tmp_path))
        assert isinstance(graph.offsets, np.memmap)
        assert isinstance(graph.neighbors, np.memmap)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [
            "abccc-n3-k2-s2.edge_u.u32",
            "abccc-n3-k2-s2.edge_v.u32",
            "abccc-n3-k2-s2.indices.u32",
            "abccc-n3-k2-s2.indptr.u32",
        ]
        assert_csr_parity(graph, spec.build())

    def test_memmap_graph_pickles_to_plain_arrays(self, tmp_path):
        graph = fast_compiled(AbcccSpec(3, 1, 2), memmap_dir=str(tmp_path))
        clone = pickle.loads(pickle.dumps(graph))
        assert not isinstance(clone.neighbors, np.memmap)
        assert np.array_equal(clone.neighbors, graph.neighbors)


class TestObservability:
    def test_fastbuild_emits_span_and_counter(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = obs_trace.Tracer(path=path)
        previous = obs_trace.set_tracer(tracer)
        try:
            fast_compiled(AbcccSpec(3, 1, 2))
        finally:
            obs_trace.set_tracer(previous)
            tracer.close()
        spans = [e for e in load_trace(path) if e["ev"] == "span"]
        (span,) = [s for s in spans if s["name"] == "topology.fastbuild"]
        assert span["tags"]["kind"] == "abccc"
        assert span["tags"]["servers"] == 18
        assert span["tags"]["memmap"] is False
        assert tracer.counters().get("fastbuild.graphs") == 1

    def test_csr_nbytes_counts_all_arrays(self):
        graph = fast_compiled(AbcccSpec(3, 1, 2))
        expected = sum(
            np.asarray(a).nbytes
            for a in (
                graph.offsets,
                graph.neighbors,
                graph.server_indices,
                graph.edge_u,
                graph.edge_v,
            )
        )
        assert fastbuild.csr_nbytes(graph) == expected
