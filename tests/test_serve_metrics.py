"""Live telemetry through the inline serve stack.

Every request must land in the latency histograms labeled by endpoint
and outcome, ``/metrics`` must expose the same numbers ``/stats``
reports, and the client's trace id must stitch the request's spans
into one tree.  Worker-pool merging (snapshots over the reply pipes,
restart survival) is covered in ``test_serve_chaos.py`` — spawning
real workers is slow; the registry plumbing is identical.
"""

import http.client
import threading

import pytest

from repro.core import AbcccSpec
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    MetricsRegistry,
    exposition_problems,
    set_registry,
)
from repro.obs.report import load_trace, report_trace_id, trace_spans
from repro.serve import (
    HTTPFrontEnd,
    ServeClient,
    ServeConfig,
    ServeError,
    TopologyService,
    normalize_trace_id,
)


@pytest.fixture(scope="module")
def graph():
    return AbcccSpec(3, 1, 2).compiled()


@pytest.fixture()
def registry():
    """Fresh process-global registry; engine/cache land in it too."""
    mine = MetricsRegistry()
    previous = set_registry(mine)
    yield mine
    set_registry(previous)


@pytest.fixture()
def service(graph, registry):
    svc = TopologyService(
        graph, ServeConfig(workers=0), label="metrics-test", registry=registry
    )
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    front = HTTPFrontEnd(service, port=0)
    thread = threading.Thread(target=front.serve_forever, daemon=True)
    thread.start()
    with ServeClient(port=front.port, retries=1, backoff_base_s=0.01, seed=3) as c:
        c.port_number = front.port
        yield c
    front.shutdown()
    front.close()
    thread.join(timeout=5)


def _histogram(snapshot, name, **labels):
    for entry in snapshot["histograms"]:
        if entry["name"] == name and entry["labels"] == labels:
            return entry
    return None


def _counter(snapshot, name, **labels):
    for entry in snapshot["counters"]:
        if entry["name"] == name and entry["labels"] == labels:
            return entry["value"]
    return 0


class TestRequestHistograms:
    def test_ok_requests_land_labeled_by_endpoint(self, service):
        for _ in range(3):
            service.submit("route", {"src": "0", "dst": "17"})
        service.submit("distance", {"src": "0", "dst": "5"})
        snap = service.metrics_snapshot()
        route = _histogram(
            snap, "serve.request.latency_seconds", endpoint="route", outcome="ok"
        )
        assert route["count"] == 3
        assert route["q"]["p50"] is not None
        distance = _histogram(
            snap, "serve.request.latency_seconds", endpoint="distance", outcome="ok"
        )
        assert distance["count"] == 1
        assert _counter(snap, "serve.requests", endpoint="route", outcome="ok") == 3
        # the execute + BFS stage histograms record too
        assert _histogram(
            snap, "serve.execute.latency_seconds", endpoint="route", outcome="ok"
        )["count"] == 3
        assert _histogram(snap, "serve.bfs.seconds", op="route")["count"] == 3

    def test_error_outcome_is_recorded(self, service):
        with pytest.raises(ServeError):
            service.submit("route", {"src": "0", "dst": "no-such-server"})
        snap = service.metrics_snapshot()
        entry = _histogram(
            snap, "serve.request.latency_seconds", endpoint="route", outcome="error"
        )
        assert entry["count"] == 1

    def test_timeout_outcome_is_recorded(self, service):
        with pytest.raises(ServeError):
            service.submit("whatif", {"sample_pairs": 10}, deadline_s=0.0)
        snap = service.metrics_snapshot()
        entry = _histogram(
            snap, "serve.request.latency_seconds", endpoint="whatif", outcome="timeout"
        )
        assert entry["count"] == 1

    def test_degraded_outcome_is_recorded(self, service, graph):
        everyone = [graph.names[i] for i in graph.server_indices]
        service.submit("whatif", {"dead_servers": everyone, "sample_pairs": 5})
        snap = service.metrics_snapshot()
        entry = _histogram(
            snap,
            "serve.request.latency_seconds",
            endpoint="whatif",
            outcome="degraded",
        )
        assert entry["count"] == 1

    def test_scenario_cache_counters(self, service):
        scenario = {"dead_servers": ["s0.0/0"]}
        service.submit("route", {"src": "1", "dst": "17", "scenario": scenario})
        service.submit("route", {"src": "2", "dst": "17", "scenario": scenario})
        snap = service.metrics_snapshot()
        assert _counter(snap, "serve.scenario.cache_miss") == 1
        assert _counter(snap, "serve.scenario.cache_hit") == 1


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_matches_stats(self, client):
        client.route("0", "17")
        client.whatif(dead_servers=["s0.0/0"], sample_pairs=10)
        conn = http.client.HTTPConnection("127.0.0.1", client.port_number, timeout=10)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        conn.close()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert "version=0.0.4" in response.getheader("Content-Type")
        assert exposition_problems(body) == []
        assert 'repro_serve_request_latency_seconds_bucket{endpoint="route"' in body

        stats = client.stats()
        recorded = sum(
            h["count"]
            for h in stats["metrics"]["histograms"]
            if h["name"] == "serve.request.latency_seconds"
        )
        exposed = sum(
            float(line.rsplit(" ", 1)[1])
            for line in body.splitlines()
            if line.startswith("repro_serve_request_latency_seconds_count")
        )
        assert exposed == recorded > 0

    def test_stats_carries_memory_section(self, client):
        memory = client.stats()["memory"]
        assert memory["main_peak_rss_mb"] is None or memory["main_peak_rss_mb"] > 0
        assert "pool_total_mb" in memory


class TestTracePropagation:
    def test_client_mints_and_sends_trace_id(self, client, service):
        client.route("0", "17")
        assert client.last_trace_id
        assert normalize_trace_id(client.last_trace_id) == client.last_trace_id

    def test_header_is_validated_not_trusted(self):
        assert normalize_trace_id(None) is None
        assert normalize_trace_id("") is None
        assert normalize_trace_id("  ") is None
        assert normalize_trace_id("ab12.троян") is None
        assert normalize_trace_id("x" * 65) is None
        assert normalize_trace_id("deadbeef.retry-2") == "deadbeef.retry-2"

    def test_inline_request_stitches_into_one_trace(self, client, tmp_path):
        path = str(tmp_path / "serve.trace.jsonl")
        tracer = obs_trace.Tracer(path=path)
        previous = obs_trace.set_tracer(tracer)
        try:
            client.route("0", "17")
            trace_id = client.last_trace_id
        finally:
            obs_trace.set_tracer(previous)
            tracer.close()
        spans = trace_spans(load_trace(path), trace_id)
        names = {s["name"] for s in spans}
        # client attempt and server-side execution in one stitched tree
        # (inline mode executes under a "serve.request" span)
        assert "serve.client.request" in names
        assert "serve.request" in names
        text, count = report_trace_id([path], trace_id)
        assert count == len(spans) >= 2
        assert trace_id in text
        assert "serve.client.request" in text

    def test_foreign_trace_header_lands_in_server_spans(self, client, tmp_path):
        """A caller-supplied X-Trace-Id tags the server-side spans."""
        path = str(tmp_path / "serve.trace.jsonl")
        tracer = obs_trace.Tracer(path=path)
        previous = obs_trace.set_tracer(tracer)
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", client.port_number, timeout=10
            )
            conn.request(
                "GET",
                "/route?src=0&dst=17",
                headers={"X-Trace-Id": "ext-42"},
            )
            response = conn.getresponse()
            response.read()
            conn.close()
            assert response.status == 200
        finally:
            obs_trace.set_tracer(previous)
            tracer.close()
        spans = trace_spans(load_trace(path), "ext-42")
        assert {s["name"] for s in spans} >= {"serve.request"}
