"""Oversubscribed tree baseline tests."""

import pytest

from repro.baselines.tree import TreeSpec
from repro.metrics.bisection import partition_cut_width
from repro.metrics.distance import link_hop_stats
from repro.routing.shortest import shortest_distance
from repro.topology.validate import LinkPolicy, validate_network


class TestStructure:
    @pytest.mark.parametrize(
        "n,racks,oversub", [(8, 4, 3), (8, 2, 1), (12, 6, 2), (4, 3, 1)]
    )
    def test_counts(self, n, racks, oversub):
        spec = TreeSpec(n, racks, oversub)
        net = spec.build()
        assert net.num_servers == spec.num_servers
        assert net.num_switches == spec.num_switches
        assert net.num_links == spec.num_links
        validate_network(net, LinkPolicy.switch_centric())

    def test_oversubscription_split(self):
        spec = TreeSpec(8, 4, oversub=3)
        assert spec.uplinks_per_rack == 2  # 8 // (3 + 1)
        assert spec.servers_per_rack == 6

    def test_tor_degree_within_radix(self):
        spec = TreeSpec(8, 4, oversub=3)
        net = spec.build()
        for tor in net.switches_by_role("tor"):
            assert net.degree(tor) <= spec.n

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeSpec(5, 2)  # odd radix
        with pytest.raises(ValueError):
            TreeSpec(8, 0)  # no racks
        with pytest.raises(ValueError):
            TreeSpec(8, 2, oversub=0)

    def test_switch_inventory_two_sizes(self):
        spec = TreeSpec(8, 4, oversub=3)
        inventory = spec.switch_inventory()
        assert inventory[8] == 4  # ToRs
        assert sum(inventory.values()) == spec.num_switches


class TestDistances:
    def test_same_rack(self):
        spec = TreeSpec(8, 4, oversub=3)
        net = spec.build()
        assert shortest_distance(net, "r0.0", "r0.1") == 2

    def test_cross_rack_through_agg(self):
        spec = TreeSpec(8, 4, oversub=3)
        net = spec.build()
        assert shortest_distance(net, "r0.0", "r1.0") == 4  # tor-agg-tor

    def test_diameter_bound(self):
        spec = TreeSpec(8, 4, oversub=3)
        net = spec.build()
        assert link_hop_stats(net).diameter <= spec.diameter_link_hops


class TestBisection:
    def test_oversubscribed_bisection_is_small(self):
        """The point of the baseline: bisection is capped by ToR uplinks,
        far below the server count."""
        spec = TreeSpec(8, 4, oversub=3)
        net = spec.build()
        side = {s for s in net.servers if int(s[1:].split(".")[0]) < 2}
        width = partition_cut_width(net, side)
        assert width == spec.bisection_links == 4  # racks * uplinks / 2
        assert width < spec.num_servers / 2  # strictly oversubscribed

    def test_single_rack_no_bisection(self):
        assert TreeSpec(8, 1).bisection_links is None
