"""Hypercube baseline: the classical reference point."""

import random

import pytest

from repro.baselines.hypercube import (
    HypercubeSpec,
    build_hypercube,
    hypercube_route,
    parse_server,
    server_name,
)
from repro.metrics.distance import server_hop_stats
from repro.routing.base import RoutingError
from repro.routing.shortest import bfs_distances
from repro.topology.validate import LinkPolicy, validate_network


class TestStructure:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_counts(self, m):
        spec = HypercubeSpec(m)
        net = spec.build()
        assert net.num_servers == spec.num_servers == 2**m
        assert net.num_switches == 0
        assert net.num_links == spec.num_links == m * 2 ** (m - 1)
        validate_network(net, LinkPolicy.direct_server())

    def test_regular_degree(self):
        net = build_hypercube(4)
        for server in net.servers:
            assert net.degree(server) == 4

    def test_neighbors_differ_in_one_bit(self):
        net = build_hypercube(3)
        for link in net.links():
            a, b = parse_server(link.u), parse_server(link.v)
            assert bin(a ^ b).count("1") == 1

    def test_diameter(self):
        spec = HypercubeSpec(4)
        assert server_hop_stats(spec.build()).diameter == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            HypercubeSpec(0)


class TestRouting:
    def test_route_length_is_hamming_distance(self):
        rng = random.Random(2)
        m = 5
        net = build_hypercube(m)
        for _ in range(30):
            a, b = rng.randrange(2**m), rng.randrange(2**m)
            route = hypercube_route(m, a, b)
            route.validate(net)
            assert route.link_hops == bin(a ^ b).count("1")

    def test_routes_are_shortest(self):
        spec = HypercubeSpec(4)
        net = spec.build()
        rng = random.Random(4)
        for _ in range(20):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            assert route.link_hops == bfs_distances(net, src, targets={dst})[dst]

    def test_out_of_range(self):
        with pytest.raises(RoutingError):
            hypercube_route(3, 0, 8)

    def test_names(self):
        assert server_name(5, 4) == "q0101"
        assert parse_server("q0101") == 5
