"""Vectorized max-min + FCT: bit parity with the legacy oracle."""

import math

import numpy as np
import pytest

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.routing.batch import batch_routes
from repro.sim.flow import max_min_allocation, route_all
from repro.topology.compiled import compile_graph
from repro.topology.fastbuild import fast_compiled
from repro.traffic import (
    RouteSet,
    fluid_fct,
    generate_matrix,
    max_min_rates,
)

PARITY_PATTERNS = (
    ("permutation", {}),
    ("all_to_all", {"max_flows": 300}),
)


def _legacy(spec, matrix):
    """Oracle rates through the legacy dict-walking stack, flow order."""
    net = spec.build()
    servers = net.servers
    flows = matrix.flows(servers)
    routes = route_all(net, flows, spec.route)
    allocation = max_min_allocation(net, flows, routes)
    rates = np.array([allocation.rates[f.flow_id] for f in flows])
    return flows, routes, net, rates


class TestOracleParity:
    """The ISSUE acceptance bar: bit-for-bit equal to sim.flow."""

    @pytest.mark.parametrize("pattern,params", PARITY_PATTERNS)
    @pytest.mark.parametrize("spec", [AbcccSpec(3, 1, 2), AbcccSpec(2, 2, 2)])
    def test_full_stack_bit_parity_on_fast_abccc(self, spec, pattern, params):
        """Arithmetic batch routes + vectorized filler == legacy stack."""
        graph = fast_compiled(spec)
        matrix = generate_matrix(pattern, graph.num_servers, seed=11, **params)
        allocation = max_min_rates(batch_routes(graph, matrix))
        _, _, _, legacy = _legacy(spec, matrix)
        assert np.array_equal(np.sort(allocation.rates), np.sort(legacy))

    @pytest.mark.parametrize("pattern,params", PARITY_PATTERNS)
    @pytest.mark.parametrize(
        "spec", [AbcccSpec(3, 1, 2), BcubeSpec(3, 1), FatTreeSpec(4)]
    )
    def test_allocator_bit_parity_on_legacy_routes(self, spec, pattern, params):
        """Same routes in => same per-flow rates out, unsorted."""
        net = spec.build()
        graph = compile_graph(net)
        matrix = generate_matrix(pattern, net.num_servers, seed=11, **params)
        flows, routes, _, legacy = _legacy(spec, matrix)
        route_set = RouteSet.from_name_routes(graph, flows, routes)
        allocation = max_min_rates(route_set)
        assert np.array_equal(allocation.rates, legacy)

    def test_bottlenecks_are_saturated_edges(self):
        graph = fast_compiled(AbcccSpec(3, 2, 2))
        matrix = generate_matrix("permutation", graph.num_servers, seed=4)
        routes = batch_routes(graph, matrix)
        allocation = max_min_rates(routes)
        assert (allocation.bottleneck_edges >= 0).all()
        # each flow's bottleneck lies on its own route
        offsets = routes.offsets
        for i in range(matrix.num_flows):
            hops = routes.edge_ids[offsets[i] : offsets[i + 1]]
            assert allocation.bottleneck_edges[i] in hops


class TestAllocationStats:
    def test_unreachable_flows_rate_zero_and_excluded(self):
        graph = fast_compiled(AbcccSpec(3, 1, 2))
        matrix = generate_matrix("permutation", graph.num_servers, seed=0)
        routes = batch_routes(graph, matrix)
        # mark two flows unreachable by hand
        unreachable = np.zeros(matrix.num_flows, dtype=bool)
        unreachable[[0, 5]] = True
        hacked = RouteSet(
            graph=graph,
            src_nodes=routes.src_nodes,
            dst_nodes=routes.dst_nodes,
            edge_ids=routes.edge_ids,
            offsets=routes.offsets,
            unreachable=unreachable,
        )
        allocation = max_min_rates(hacked)
        assert allocation.rates[0] == 0.0 and allocation.rates[5] == 0.0
        assert allocation.num_unreachable == 2
        assert allocation.min_rate > 0.0  # stats over served flows only

    def test_jain_in_unit_interval_and_percentiles_sorted(self):
        graph = fast_compiled(AbcccSpec(3, 2, 2))
        matrix = generate_matrix("uniform", graph.num_servers, seed=8)
        allocation = max_min_rates(batch_routes(graph, matrix))
        assert 0.0 < allocation.jain_fairness <= 1.0
        percentiles = allocation.rate_percentiles((0.01, 0.5, 0.99))
        assert percentiles[0.01] <= percentiles[0.5] <= percentiles[0.99]
        assert allocation.min_rate <= allocation.mean_rate <= allocation.max_rate


class TestFluidFct:
    def test_single_flow_completes_at_size_over_rate(self):
        graph = fast_compiled(AbcccSpec(3, 1, 2))
        matrix = generate_matrix("permutation", graph.num_servers, seed=1)
        routes = batch_routes(graph, matrix)
        allocation = max_min_rates(routes)
        stats = fluid_fct(routes, np.full(matrix.num_flows, 2.0))
        # the slowest flow finishes no earlier than size / its static rate
        assert stats.max_fct >= 2.0 / allocation.rates.max() - 1e-9
        assert np.isfinite(stats.completion_times).all()
        assert stats.num_completed == matrix.num_flows

    def test_rates_only_improve_as_flows_retire(self):
        """Completion order respects size/rate dominance: a flow with the
        same route but half the size never finishes later."""
        graph = fast_compiled(AbcccSpec(3, 1, 2))
        matrix = generate_matrix("permutation", graph.num_servers, seed=2)
        routes = batch_routes(graph, matrix)
        small = fluid_fct(routes, np.full(matrix.num_flows, 1.0))
        large = fluid_fct(routes, np.full(matrix.num_flows, 3.0))
        assert (large.completion_times >= small.completion_times - 1e-9).all()

    def test_sizes_length_checked(self):
        graph = fast_compiled(AbcccSpec(3, 1, 2))
        matrix = generate_matrix("permutation", graph.num_servers, seed=0)
        routes = batch_routes(graph, matrix)
        with pytest.raises(ValueError, match="one entry per flow"):
            fluid_fct(routes, np.ones(3))
