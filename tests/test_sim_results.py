"""ResultTable rendering and CSV persistence."""

import pytest

from repro.sim.results import ResultTable


@pytest.fixture()
def table() -> ResultTable:
    table = ResultTable("demo", ["name", "value", "flag"])
    table.add_row(name="alpha", value=1.23456, flag=True)
    table.add_row(name="beta", value=None, flag=False)
    return table


class TestRows:
    def test_unknown_column_rejected(self, table):
        with pytest.raises(KeyError, match="unknown columns"):
            table.add_row(nope=1)

    def test_column_access(self, table):
        assert table.column("name") == ["alpha", "beta"]
        with pytest.raises(KeyError):
            table.column("ghost")

    def test_partial_rows_allowed(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(a=1)
        assert table.column("b") == [None]


class TestRendering:
    def test_render_contains_data(self, table):
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "1.235" in text  # default precision 3
        assert "yes" in text and "no" in text
        assert "-" in text  # None cell

    def test_precision(self, table):
        assert "1.23" in table.render(precision=2)

    def test_notes_rendered(self, table):
        table.add_note("hello note")
        assert "note: hello note" in table.render()

    def test_integral_floats_shown_as_ints(self):
        table = ResultTable("t", ["x"])
        table.add_row(x=4.0)
        assert " 4\n" in table.render() or table.render().rstrip().endswith("4")


class TestCsv:
    def test_roundtrip(self, table, tmp_path):
        path = table.to_csv(str(tmp_path / "sub" / "demo.csv"))
        loaded = ResultTable.from_csv(path)
        assert loaded.columns == table.columns
        assert loaded.rows[0]["name"] == "alpha"
        assert loaded.rows[1]["value"] == ""  # None -> empty cell

    def test_title_default(self, table, tmp_path):
        path = table.to_csv(str(tmp_path / "x.csv"))
        assert ResultTable.from_csv(path).title == "x.csv"
