"""Degradation sweeps: curves, journaling/resume, pool degradation."""

import math

import pytest

from repro.faults.journal import TrialJournal, set_active_journal
from repro.faults.plan import FaultModel
from repro.faults.sweep import degradation_sweep


@pytest.fixture(autouse=True)
def _no_ambient_journal():
    """Keep harness-installed journals from leaking into these tests."""
    previous = set_active_journal(None)
    yield
    set_active_journal(previous)


def _sweep(net, journal=None, **overrides):
    kwargs = dict(
        levels=[0.0, 0.1, 0.3],
        trials=3,
        sample_pairs=40,
        seed=5,
        workers=1,
        journal=journal,
    )
    kwargs.update(overrides)
    return degradation_sweep(net, FaultModel("server+switch"), **kwargs)


class TestCurveShape:
    def test_levels_and_outcomes(self, abccc_medium):
        _, net = abccc_medium
        curve = _sweep(net)
        assert [p.level for p in curve.points] == [0.0, 0.1, 0.3]
        assert all(p.trials == 3 for p in curve.points)
        assert len(curve.outcomes) == 9
        # Severity monotonicity holds for means on this instance.
        assert curve.point(0.0).mean_ratio >= curve.point(0.3).mean_ratio

    def test_ratios_are_probabilities(self, abccc_medium):
        _, net = abccc_medium
        for outcome in _sweep(net).outcomes:
            assert 0.0 <= outcome.connection_ratio <= 1.0
            assert 0.0 <= outcome.largest_component <= 1.0

    def test_ci_zero_at_unfailed_level(self, abccc_medium):
        _, net = abccc_medium
        point = _sweep(net).point(0.0)
        assert point.ci95_ratio == 0.0
        assert point.mean_ratio == 1.0

    def test_ci_matches_formula(self, abccc_medium):
        _, net = abccc_medium
        point = _sweep(net).point(0.3)
        ratios = [
            o.connection_ratio for o in _sweep(net).outcomes if o.level == 0.3
        ]
        n = len(ratios)
        mean = sum(ratios) / n
        var = sum((r - mean) ** 2 for r in ratios) / (n - 1)
        assert point.ci95_ratio == pytest.approx(1.96 * math.sqrt(var / n))

    def test_deterministic_across_calls(self, abccc_medium):
        _, net = abccc_medium
        assert _sweep(net) == _sweep(net)

    def test_unknown_level_raises(self, abccc_medium):
        _, net = abccc_medium
        with pytest.raises(KeyError):
            _sweep(net).point(0.77)

    def test_trials_validated(self, abccc_medium):
        _, net = abccc_medium
        with pytest.raises(ValueError, match="trials"):
            _sweep(net, trials=0)


class TestJournalResume:
    def test_completed_trials_not_recomputed(self, abccc_medium, tmp_path):
        _, net = abccc_medium
        path = str(tmp_path / "sweep.journal.jsonl")
        with TrialJournal(path) as journal:
            full = _sweep(net, journal=journal)
        assert len(journal) == 9

        # Replay through a fresh journal built from the same file: the
        # sweep must not evaluate anything (masking disabled would raise
        # on evaluation of a scenario if it ran — instead we assert by
        # counting journal growth).
        with TrialJournal(path) as replay:
            before = len(replay)
            resumed = _sweep(net, journal=replay)
            assert len(replay) == before  # nothing new recorded
        assert resumed == full

    def test_partial_journal_computes_only_missing(self, abccc_medium, tmp_path):
        _, net = abccc_medium
        path = str(tmp_path / "partial.journal.jsonl")
        with TrialJournal(path) as journal:
            full = _sweep(net, journal=journal)
        # Drop the last two lines — as if the run was killed mid-sweep.
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:-2]) + "\n")
        with TrialJournal(path) as partial:
            assert len(partial) == 7
            resumed = _sweep(net, journal=partial)
            assert len(partial) == 9
        assert resumed == full

    def test_truncated_trailing_line_tolerated(self, abccc_medium, tmp_path):
        _, net = abccc_medium
        path = str(tmp_path / "torn.journal.jsonl")
        with TrialJournal(path) as journal:
            full = _sweep(net, journal=journal)
        with open(path, "a") as handle:
            handle.write('{"key": "torn-write')  # no newline, invalid JSON
        with TrialJournal(path) as torn:
            assert len(torn) == 9
            assert _sweep(net, journal=torn) == full

    def test_active_journal_picked_up(self, abccc_medium, tmp_path):
        _, net = abccc_medium
        journal = TrialJournal(str(tmp_path / "active.journal.jsonl"))
        set_active_journal(journal)
        try:
            _sweep(net)
        finally:
            set_active_journal(None)
            journal.close()
        assert len(journal) == 9


class TestParallelPath:
    def test_pool_results_match_sequential(self, abccc_medium):
        _, net = abccc_medium
        sequential = _sweep(net, workers=1)
        pooled = _sweep(net, workers=2, trials=4, levels=[0.0, 0.1, 0.3])
        resequential = _sweep(net, workers=1, trials=4, levels=[0.0, 0.1, 0.3])
        assert pooled == resequential
        assert sequential.points != ()  # smoke: both paths produced curves

    def test_broken_pool_degrades_loudly_with_same_results(
        self, abccc_medium, monkeypatch
    ):
        from repro.metrics import engine

        _, net = abccc_medium

        class AlwaysBroken:
            def __init__(self, *args, **kwargs):
                raise OSError("fork refused (simulated)")

        monkeypatch.setattr(engine, "ProcessPoolExecutor", AlwaysBroken)
        monkeypatch.setattr(engine, "POOL_RETRY_BACKOFF_S", 0.0)
        with pytest.warns(engine.DegradedModeWarning):
            degraded = _sweep(net, workers=2, trials=4, levels=[0.0, 0.1, 0.3])
        assert degraded == _sweep(net, workers=1, trials=4, levels=[0.0, 0.1, 0.3])
