"""Traffic-matrix generators: determinism, degenerate inputs, bridges."""

import subprocess
import sys

import numpy as np
import pytest

from repro.traffic import (
    MATRICES,
    TrafficError,
    TrafficMatrix,
    all_to_all_matrix,
    default_params,
    generate_matrix,
    hot_rack_matrix,
    incast_matrix,
    job_matrix,
    permutation_matrix,
    uniform_matrix,
)


def _digest(matrix: TrafficMatrix) -> str:
    import hashlib

    h = hashlib.sha256()
    h.update(np.ascontiguousarray(matrix.src).tobytes())
    h.update(np.ascontiguousarray(matrix.dst).tobytes())
    h.update(np.ascontiguousarray(matrix.size).tobytes())
    return h.hexdigest()


class TestInvariants:
    @pytest.mark.parametrize("pattern", sorted(MATRICES))
    def test_no_self_flows_and_in_range(self, pattern):
        m = generate_matrix(pattern, 96, seed=3)
        assert m.num_flows > 0
        assert not np.any(m.src == m.dst)
        for arr in (m.src, m.dst):
            assert arr.min() >= 0 and arr.max() < 96
        assert np.all(m.size > 0)

    @pytest.mark.parametrize("pattern", sorted(MATRICES))
    def test_same_seed_same_matrix(self, pattern):
        a = generate_matrix(pattern, 64, seed=9)
        b = generate_matrix(pattern, 64, seed=9)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    @pytest.mark.parametrize("pattern", sorted(MATRICES))
    def test_different_seed_different_matrix(self, pattern):
        a = generate_matrix(pattern, 64, seed=1)
        b = generate_matrix(pattern, 64, seed=2)
        assert not (
            np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
        )

    def test_below_two_servers_rejected(self):
        for pattern in sorted(MATRICES):
            with pytest.raises(TrafficError):
                generate_matrix(pattern, 1, seed=0)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(TrafficError, match="unknown traffic pattern"):
            generate_matrix("nope", 16)

    def test_matrix_validates_self_flows(self):
        with pytest.raises(TrafficError, match="src == dst"):
            TrafficMatrix(
                pattern="x",
                num_servers=4,
                src=np.array([1]),
                dst=np.array([1]),
                size=np.array([1.0]),
                seed=0,
            )


class TestCrossProcessDeterminism:
    """The PCG64 child-seed streams must match across interpreters."""

    def test_subprocess_reproduces_digests(self):
        patterns = sorted(MATRICES)
        local = {p: _digest(generate_matrix(p, 80, seed=42)) for p in patterns}
        script = (
            "import json\n"
            "from repro.traffic import generate_matrix\n"
            "import tests.test_traffic_matrix as t\n"
            "out = {p: t._digest(generate_matrix(p, 80, seed=42)) for p in %r}\n"
            "print(json.dumps(out))\n" % (patterns,)
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        import json

        assert json.loads(result.stdout) == local


class TestPermutation:
    def test_is_derangement_every_server(self):
        m = permutation_matrix(50, seed=7)
        assert np.array_equal(np.sort(m.src), np.arange(50))
        assert np.array_equal(np.sort(m.dst), np.arange(50))
        assert not np.any(m.src == m.dst)

    def test_two_servers(self):
        m = permutation_matrix(2, seed=0)
        assert sorted(zip(m.src.tolist(), m.dst.tolist())) == [(0, 1), (1, 0)]

    def test_many_seeds_always_derangements(self):
        for seed in range(40):
            m = permutation_matrix(13, seed=seed)
            assert not np.any(m.src == m.dst)
            assert np.array_equal(np.sort(m.dst), np.arange(13))


class TestAllToAll:
    def test_full_square(self):
        m = all_to_all_matrix(7, seed=0)
        assert m.num_flows == 7 * 6
        pairs = set(zip(m.src.tolist(), m.dst.tolist()))
        assert len(pairs) == 42

    def test_subsample_unique_pairs(self):
        m = all_to_all_matrix(30, max_flows=100, seed=5)
        assert m.num_flows == 100
        pairs = set(zip(m.src.tolist(), m.dst.tolist()))
        assert len(pairs) == 100  # sampled without replacement

    def test_two_servers(self):
        m = all_to_all_matrix(2, seed=0)
        assert m.num_flows == 2


class TestIncast:
    def test_fan_in_larger_than_cluster_clamped(self):
        m = incast_matrix(10, fan_in=500, num_targets=1, seed=3)
        assert m.num_flows == 9  # clamped to num_servers - 1
        assert m.notes  # the clamp is recorded
        assert "clamp" in " ".join(m.notes)

    def test_senders_exclude_target(self):
        m = incast_matrix(64, fan_in=16, num_targets=4, seed=1)
        assert not np.any(m.src == m.dst)
        assert len(np.unique(m.dst)) == 4

    def test_two_servers(self):
        m = incast_matrix(2, fan_in=5, num_targets=1, seed=0)
        assert m.num_flows == 1


class TestHotRack:
    def test_single_rack_topology_falls_back(self):
        # rack_size >= num_servers: every server is "hot"
        m = hot_rack_matrix(8, num_flows=40, rack_size=8, num_hot_racks=1, seed=2)
        assert m.num_flows == 40
        assert not np.any(m.src == m.dst)
        assert any("single-rack" in note for note in m.notes)

    def test_hot_fraction_skews_destinations(self):
        m = hot_rack_matrix(
            200, num_flows=2000, rack_size=20, num_hot_racks=1, hot_fraction=0.9, seed=4
        )
        per_rack = np.bincount(m.dst // 20, minlength=10)
        assert per_rack.max() > 1500  # ~90% of 2000 into the one hot rack

    def test_two_servers(self):
        m = hot_rack_matrix(2, num_flows=6, rack_size=1, seed=0)
        assert m.num_flows == 6
        assert not np.any(m.src == m.dst)


class TestJob:
    def test_reuses_job_generators_deterministically(self):
        a = job_matrix(64, num_jobs=6, seed=11)
        b = job_matrix(64, num_jobs=6, seed=11)
        assert np.array_equal(a.src, b.src)
        assert a.num_flows > 0

    def test_scale_clamped_to_cluster(self):
        m = job_matrix(4, num_jobs=3, scale=64, seed=0)
        assert m.num_flows > 0
        assert any("clamp" in note for note in m.notes)


class TestBridges:
    def test_flows_bridge_carries_names(self):
        m = uniform_matrix(6, num_flows=10, seed=0)
        names = [f"srv{i}" for i in range(6)]
        flows = m.flows(names)
        assert len(flows) == 10
        assert all(f.src.startswith("srv") for f in flows)

    def test_flows_bridge_raw_ordinals(self):
        m = uniform_matrix(6, num_flows=10, seed=0)
        flows = m.flows()
        assert all(isinstance(f.src, int) for f in flows)

    def test_default_params_cover_all_patterns(self):
        for pattern in MATRICES:
            params = default_params(pattern, 1000)
            generate_matrix(pattern, 1000, seed=0, **params)
