"""Digit-correction routing: validity, length bounds, shortest-path quality."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import properties
from repro.core.address import AbcccParams, ServerAddress
from repro.core.routing import (
    abccc_route,
    logical_distance,
    route_length_bound,
    route_with_order,
)
from repro.routing.base import RoutingError
from repro.routing.shortest import bfs_distances

PARAMS_POOL = [
    AbcccParams(2, 1, 2),
    AbcccParams(3, 1, 2),
    AbcccParams(3, 2, 2),
    AbcccParams(3, 2, 3),
    AbcccParams(4, 2, 2),
    AbcccParams(2, 3, 2),
    AbcccParams(4, 1, 3),  # c = 1 (BCube case)
]


def _random_server(params: AbcccParams, rng: random.Random) -> ServerAddress:
    total = params.num_crossbars * params.crossbar_size
    return ServerAddress.from_rank(params, rng.randrange(total))


class TestRouteValidity:
    @pytest.mark.parametrize("params", PARAMS_POOL, ids=str)
    @pytest.mark.parametrize("strategy", ["identity", "random", "locality", "balanced"])
    def test_routes_are_valid_paths(self, params, strategy):
        from repro.core.topology import build_abccc

        net = build_abccc(params)
        rng = random.Random(17)
        for i in range(25):
            src = _random_server(params, rng)
            dst = _random_server(params, rng)
            route = abccc_route(
                params, src, dst, strategy=strategy, seed=i, rotation=i
            )
            route.validate(net)
            assert route.source == src.name
            assert route.destination == dst.name
            assert route.is_simple

    def test_self_route(self):
        params = AbcccParams(3, 1, 2)
        addr = ServerAddress((0, 0), 0)
        assert abccc_route(params, addr, addr).nodes == (addr.name,)

    def test_same_crossbar_route(self):
        params = AbcccParams(3, 2, 2)
        src = ServerAddress((0, 1, 2), 0)
        dst = ServerAddress((0, 1, 2), 2)
        route = abccc_route(params, src, dst)
        assert route.link_hops == 2  # through the crossbar switch


class TestLengthGuarantees:
    @pytest.mark.parametrize("params", PARAMS_POOL, ids=str)
    def test_diameter_bound_respected(self, params):
        rng = random.Random(3)
        bound = 2 * properties.diameter_server_hops(params)
        for _ in range(40):
            src = _random_server(params, rng)
            dst = _random_server(params, rng)
            route = abccc_route(params, src, dst, strategy="locality")
            assert route.link_hops <= bound

    def test_length_bound_matches_route(self):
        params = AbcccParams(3, 2, 2)
        rng = random.Random(5)
        for _ in range(50):
            src = _random_server(params, rng)
            dst = _random_server(params, rng)
            route = abccc_route(params, src, dst, strategy="locality")
            assert route.link_hops == route_length_bound(params, src, dst)
            assert logical_distance(params, src, dst) == route.link_hops // 2

    @pytest.mark.parametrize(
        "params",
        [AbcccParams(3, 1, 2), AbcccParams(3, 2, 2), AbcccParams(2, 2, 2), AbcccParams(3, 2, 3)],
        ids=str,
    )
    def test_locality_routes_are_shortest(self, params):
        """Locality digit correction matches BFS shortest paths exactly
        (exhaustively over sources, sampled destinations)."""
        from repro.core.topology import build_abccc

        net = build_abccc(params)
        rng = random.Random(23)
        servers = net.servers
        for src_name in rng.sample(servers, min(12, len(servers))):
            dist = bfs_distances(net, src_name)
            src = ServerAddress.parse(src_name)
            for dst_name in rng.sample(servers, min(20, len(servers))):
                if dst_name == src_name:
                    continue
                route = abccc_route(params, src, ServerAddress.parse(dst_name))
                assert route.link_hops == dist[dst_name], (src_name, dst_name)


class TestRouteWithOrder:
    def test_incomplete_order_rejected(self):
        params = AbcccParams(3, 2, 2)
        src = ServerAddress((0, 0, 0), 0)
        dst = ServerAddress((1, 1, 1), 0)
        with pytest.raises(RoutingError, match="uncorrected"):
            route_with_order(params, src, dst, [0, 1])

    def test_already_correct_levels_skipped(self):
        params = AbcccParams(3, 2, 2)
        src = ServerAddress((0, 1, 0), 0)
        dst = ServerAddress((1, 1, 0), 0)
        route = route_with_order(params, src, dst, [0, 1, 2])
        assert route.link_hops == 2  # only level 0 differs

    def test_bad_level_rejected(self):
        params = AbcccParams(3, 1, 2)
        src = ServerAddress((0, 0), 0)
        dst = ServerAddress((1, 1), 0)
        with pytest.raises(Exception):
            route_with_order(params, src, dst, [0, 5])

    def test_bad_digits_rejected(self):
        params = AbcccParams(3, 1, 2)
        with pytest.raises(Exception):
            route_with_order(
                params, ServerAddress((9, 0), 0), ServerAddress((0, 0), 0), []
            )


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_routing_hypothesis_sweep(data):
    """Random (params, pair, strategy): route is valid, simple, within the
    diameter bound, and its node names round-trip through the codecs."""
    n = data.draw(st.integers(min_value=2, max_value=4))
    k = data.draw(st.integers(min_value=0, max_value=3))
    s = data.draw(st.integers(min_value=2, max_value=4))
    params = AbcccParams(n, k, s)
    total = params.num_crossbars * params.crossbar_size
    src = ServerAddress.from_rank(params, data.draw(st.integers(0, total - 1)))
    dst = ServerAddress.from_rank(params, data.draw(st.integers(0, total - 1)))
    strategy = data.draw(st.sampled_from(["identity", "random", "locality", "balanced"]))
    route = abccc_route(params, src, dst, strategy=strategy, seed=1, rotation=2)
    assert route.is_simple
    if strategy == "locality":
        # Only the transfer-minimal strategy meets the diameter bound.
        assert route.link_hops <= 2 * properties.diameter_server_hops(params)
    else:
        # Any strategy: <= one transfer around every correction plus the
        # first/last moves -> (k+1) corrections + (k+1) + 2 transfers.
        assert route.link_hops <= 2 * (2 * params.levels + 2)
    assert route.nodes[0] == src.name
    assert route.nodes[-1] == dst.name
    # Every visited server parses back to a legal address.
    for name in route.nodes:
        if name.startswith("s"):
            addr = ServerAddress.parse(name)
            params.check_digits(addr.digits)
