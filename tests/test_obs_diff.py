"""Perf-regression gate: ``repro obs diff`` and its noise handling."""

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    diff_files,
    diff_timings,
    flatten_timings,
    render_diff,
)

OLD_BENCH = {
    "benchmark": "fastbuild",
    "rows": [
        {"spec": "A(n=4)", "servers": 1024, "fast_s": 0.010, "object_s": 0.200,
         "speedup": 20.0},
        {"spec": "A(n=8)", "servers": 163_840, "fast_s": 0.900,
         "kernel_s": {"bitpack": 0.050, "dense": 0.400}},
    ],
}


def _bench(scale_key=None, factor=1.0, uniform=1.0):
    """OLD_BENCH with every timing scaled; one key optionally extra-scaled."""
    new = json.loads(json.dumps(OLD_BENCH))
    for row in new["rows"]:
        for key, value in list(row.items()):
            if key.endswith("_s"):
                if isinstance(value, dict):
                    for sub in value:
                        value[sub] *= uniform
                        if scale_key == f"{row['spec']}.{key}.{sub}":
                            value[sub] *= factor
                else:
                    row[key] *= uniform
                    if scale_key == f"{row['spec']}.{key}":
                        row[key] *= factor
    return new


class TestFlatten:
    def test_only_timing_leaves_gate(self):
        timings = flatten_timings(OLD_BENCH)
        assert "A(n=4).fast_s" in timings
        assert "A(n=8).kernel_s.bitpack" in timings
        # counts and ratios are informational, never compared
        assert not any("servers" in k or "speedup" in k for k in timings)

    def test_metrics_snapshot_flattens_histograms(self):
        snapshot = {
            "histograms": [
                {
                    "name": "serve.request.latency_seconds",
                    "labels": {"endpoint": "route", "outcome": "ok"},
                    "count": 4,
                    "sum": 0.4,
                    "q": {"p50": 0.1, "p99": 0.2},
                }
            ]
        }
        timings = flatten_timings(snapshot)
        key = "serve.request.latency_seconds{endpoint=route,outcome=ok}"
        assert timings[f"{key}.mean_s"] == pytest.approx(0.1)
        assert timings[f"{key}.p99_s"] == pytest.approx(0.2)


class TestThresholds:
    def test_identical_snapshots_pass(self):
        result = diff_timings(flatten_timings(OLD_BENCH), flatten_timings(OLD_BENCH))
        assert result.ok and not result.regressions

    def test_2x_slowdown_is_caught(self):
        new = _bench(scale_key="A(n=8).fast_s", factor=2.0)
        result = diff_timings(flatten_timings(OLD_BENCH), flatten_timings(new))
        assert [e.key for e in result.regressions] == ["A(n=8).fast_s"]

    def test_small_relative_noise_passes(self):
        new = _bench(uniform=1.10)  # 10% jitter, threshold 25%
        result = diff_timings(flatten_timings(OLD_BENCH), flatten_timings(new))
        assert result.ok

    def test_absolute_floor_ignores_microsecond_jitter(self):
        old = {"x.fast_s": 0.000010}
        new = {"x.fast_s": 0.000020}  # 2x, but only 10 microseconds
        assert diff_timings(old, new).ok
        assert not diff_timings(old, new, min_abs_s=0.000001).ok

    def test_calibration_forgives_a_uniformly_slower_machine(self):
        new = _bench(uniform=1.6)  # every timing 1.6x: a slower runner
        flat_old, flat_new = flatten_timings(OLD_BENCH), flatten_timings(new)
        assert not diff_timings(flat_old, flat_new).ok
        calibrated = diff_timings(flat_old, flat_new, calibrate=True)
        assert calibrated.ok
        assert calibrated.calibration == pytest.approx(1.6)

    def test_calibration_still_catches_a_lone_regression(self):
        new = _bench(scale_key="A(n=8).fast_s", factor=2.5, uniform=1.6)
        result = diff_timings(
            flatten_timings(OLD_BENCH), flatten_timings(new), calibrate=True
        )
        assert [e.key for e in result.regressions] == ["A(n=8).fast_s"]

    def test_disjoint_keys_are_noted_not_gated(self):
        result = diff_timings({"a.fast_s": 1.0}, {"b.fast_s": 1.0})
        assert result.ok
        assert result.only_old == ["a.fast_s"]
        assert result.only_new == ["b.fast_s"]


class TestRender:
    def test_report_flags_regressions_loudly(self, tmp_path):
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(OLD_BENCH))
        new_path.write_text(json.dumps(_bench(scale_key="A(n=4).fast_s", factor=3.0)))
        result = diff_files(str(old_path), str(new_path))
        text = render_diff(str(old_path), str(new_path), result, threshold=0.25)
        assert "REGRESSED" in text
        assert text.splitlines()[-1].startswith("FAIL: 1 regression")
        # the regression sorts first
        first_row = text.splitlines()[3]
        assert "A(n=4).fast_s" in first_row

    def test_clean_report_says_ok(self, tmp_path):
        path = tmp_path / "same.json"
        path.write_text(json.dumps(OLD_BENCH))
        result = diff_files(str(path), str(path))
        text = render_diff(str(path), str(path), result, threshold=0.25)
        assert text.splitlines()[-1].startswith("OK")


class TestCli:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(OLD_BENCH))
        assert main(["obs", "diff", str(path), str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_2x_slowdown(self, tmp_path, capsys):
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(OLD_BENCH))
        new_path.write_text(json.dumps(_bench(scale_key="A(n=8).fast_s", factor=2.0)))
        assert main(["obs", "diff", str(old_path), str(new_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_calibrate_flag(self, tmp_path, capsys):
        old_path, new_path = tmp_path / "old.json", tmp_path / "new.json"
        old_path.write_text(json.dumps(OLD_BENCH))
        new_path.write_text(json.dumps(_bench(uniform=1.6)))
        assert main(["obs", "diff", str(old_path), str(new_path)]) == 1
        assert (
            main(["obs", "diff", str(old_path), str(new_path), "--calibrate"]) == 0
        )
        assert "calibration" in capsys.readouterr().out

    def test_missing_file_is_a_cli_error(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(OLD_BENCH))
        assert main(["obs", "diff", str(tmp_path / "nope.json"), str(path)]) == 2
        assert "repro: error" in capsys.readouterr().err
