"""Jellyfish (random regular graph) baseline tests."""

import pytest

from repro.baselines.jellyfish import JellyfishSpec, _sample_regular_graph
from repro.topology.validate import LinkPolicy, is_connected, validate_network


class TestSampler:
    @pytest.mark.parametrize("nodes,degree", [(6, 3), (10, 4), (9, 2), (20, 5)])
    def test_regularity_and_connectivity(self, nodes, degree):
        edges = _sample_regular_graph(nodes, degree, seed=3)
        counts = {v: 0 for v in range(nodes)}
        for u, v in edges:
            assert u != v
            counts[u] += 1
            counts[v] += 1
        assert all(c == degree for c in counts.values())

    def test_seed_determinism(self):
        assert _sample_regular_graph(12, 3, 7) == _sample_regular_graph(12, 3, 7)

    def test_seeds_differ(self):
        assert _sample_regular_graph(12, 3, 7) != _sample_regular_graph(12, 3, 8)

    def test_odd_stub_count_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            _sample_regular_graph(5, 3, 0)

    def test_degree_too_high(self):
        with pytest.raises(ValueError, match="switches"):
            _sample_regular_graph(4, 4, 0)


class TestSpec:
    def test_counts(self):
        spec = JellyfishSpec(switches=10, ports=6, servers_per_switch=2, seed=1)
        net = spec.build()
        assert net.num_servers == spec.num_servers == 20
        assert net.num_switches == 10
        assert net.num_links == spec.num_links == 20 + 10 * 4 // 2
        validate_network(net, LinkPolicy.switch_centric())
        assert is_connected(net)

    def test_deterministic_build(self):
        spec = JellyfishSpec(10, 6, 2, seed=5)
        a, b = spec.build(), spec.build()
        assert {l.key for l in a.links()} == {l.key for l in b.links()}

    def test_switch_port_budget(self):
        spec = JellyfishSpec(10, 6, 2, seed=1)
        net = spec.build()
        for switch in net.switches:
            assert net.degree(switch) == 6  # full radix: r fabric + servers

    def test_validation(self):
        with pytest.raises(ValueError):
            JellyfishSpec(2, 4, 1)
        with pytest.raises(ValueError):
            JellyfishSpec(10, 4, 4)  # no fabric ports left

    def test_routes(self):
        spec = JellyfishSpec(8, 6, 2, seed=2)
        net = spec.build()
        route = spec.route(net, net.servers[0], net.servers[-1])
        route.validate(net)

    def test_expansion_flexibility_narrative(self):
        """Jellyfish sizes are not quantised: 10 and 11 switches both
        build (the property ABCCC trades structure for)."""
        for switches in (10, 11):
            spec = JellyfishSpec(switches, 6, 2, seed=4)
            assert is_connected(spec.build())


class TestIncrementalGrowth:
    def _grown(self, seed=5):
        from repro.baselines.jellyfish import grow_jellyfish

        spec = JellyfishSpec(10, 6, 2, seed=1)
        net = spec.build()
        plan = grow_jellyfish(net, spec, seed=seed)
        return spec, net, plan

    def test_degrees_preserved(self):
        spec, net, _ = self._grown()
        for switch in net.switches:
            assert net.degree(switch) == spec.ports
        assert net.num_switches == spec.switches_count + 1
        assert net.num_servers == spec.num_servers + spec.servers_per_switch

    def test_stays_connected(self):
        _, net, _ = self._grown()
        assert is_connected(net)
        validate_network(net, LinkPolicy.switch_centric())

    def test_growth_requires_rewiring(self):
        """The contrast with ABCCC: removed_links is never empty."""
        spec, _, plan = self._grown()
        r = spec.ports - spec.servers_per_switch
        assert len(plan.removed_links) == r // 2
        assert not plan.is_pure_addition
        assert plan.recabled_nodes  # live switches were re-plugged

    def test_plan_counts(self):
        spec, _, plan = self._grown()
        r = spec.ports - spec.servers_per_switch
        assert len(plan.new_servers) == spec.servers_per_switch
        assert plan.new_switches == (f"js{spec.switches_count}",)
        assert len(plan.new_links) == spec.servers_per_switch + r

    def test_odd_fabric_degree_rejected(self):
        from repro.baselines.jellyfish import grow_jellyfish
        from repro.core.expansion import ExpansionError

        spec = JellyfishSpec(10, 6, 3, seed=1)  # r = 3, odd
        with pytest.raises(ExpansionError, match="even"):
            grow_jellyfish(spec.build(), spec, seed=1)

    def test_repeated_growth(self):
        """Grow twice in a row: each step splices cleanly."""
        from repro.baselines.jellyfish import JellyfishSpec, grow_jellyfish

        spec = JellyfishSpec(10, 6, 2, seed=1)
        net = spec.build()
        grow_jellyfish(net, spec, seed=2)
        bigger = JellyfishSpec(11, 6, 2, seed=1)
        grow_jellyfish(net, bigger, seed=3)
        assert net.num_switches == 12
        assert is_connected(net)
