"""Bisection estimation: exact cuts, bounds, candidate partitions."""

import pytest

from repro.baselines.bcube import BcubeSpec
from repro.core import AbcccSpec
from repro.metrics.bisection import (
    bisection_upper_bound,
    digit_split_abccc,
    digit_split_bcube,
    exact_bisection_small,
    partition_cut_width,
    random_split,
    spectral_split,
)
from repro.topology.graph import Network


def _dumbbell() -> Network:
    """Two stars joined by one bridge link: bisection is obviously 1."""
    net = Network("dumbbell")
    for side in ("a", "b"):
        net.add_switch(f"w{side}", ports=4)
        for i in range(3):
            net.add_server(f"{side}{i}", ports=1)
            net.add_link(f"{side}{i}", f"w{side}")
    net.add_link("wa", "wb")
    return net


class TestPartitionCutWidth:
    def test_dumbbell_natural_cut(self):
        net = _dumbbell()
        width = partition_cut_width(net, {"a0", "a1", "a2"})
        assert width == 1

    def test_dumbbell_bad_cut_costs_more(self):
        net = _dumbbell()
        width = partition_cut_width(net, {"a0", "a1", "b0"})
        assert width > 1

    def test_rejects_improper_subsets(self, tiny_net):
        with pytest.raises(ValueError):
            partition_cut_width(tiny_net, set())
        with pytest.raises(ValueError):
            partition_cut_width(tiny_net, {"a", "b"})

    def test_rejects_non_servers(self, tiny_net):
        with pytest.raises(ValueError, match="non-server"):
            partition_cut_width(tiny_net, {"sw"})

    def test_switch_placement_optimised(self, tiny_net):
        # One server on each side; the only link cut is one of the two.
        assert partition_cut_width(tiny_net, {"a"}) == 1


class TestExactSmall:
    def test_dumbbell(self):
        assert exact_bisection_small(_dumbbell()) == 1

    def test_abccc_tiny_matches_formula(self):
        spec = AbcccSpec(2, 1, 2)  # 8 servers
        assert exact_bisection_small(spec.build()) == spec.bisection_links == 2

    def test_bcube_tiny_matches_formula(self):
        spec = BcubeSpec(2, 1)  # 4 servers
        assert exact_bisection_small(spec.build()) == spec.bisection_links == 2

    def test_refuses_large_instances(self, abccc_medium):
        _, net = abccc_medium
        with pytest.raises(ValueError, match="too many"):
            exact_bisection_small(net)


class TestUpperBound:
    def test_upper_bound_at_least_exact(self):
        net = _dumbbell()
        assert bisection_upper_bound(net) >= exact_bisection_small(net)

    def test_digit_split_finds_formula_on_abccc(self):
        spec = AbcccSpec(2, 2, 2)
        net = spec.build()
        candidates = [digit_split_abccc(net, level) for level in range(3)]
        assert bisection_upper_bound(net, candidates) == spec.bisection_links

    def test_digit_split_finds_formula_on_bcube(self):
        spec = BcubeSpec(2, 2)
        net = spec.build()
        candidates = [digit_split_bcube(net, level) for level in range(3)]
        assert bisection_upper_bound(net, candidates) == spec.bisection_links

    def test_digit_split_requires_builder_meta(self, tiny_net):
        with pytest.raises(ValueError, match="builder"):
            digit_split_abccc(tiny_net, 0)


class TestSplits:
    def test_spectral_split_is_half(self, abccc_small):
        _, net = abccc_small
        side = spectral_split(net)
        assert len(side) == net.num_servers // 2

    def test_random_split_is_half_and_seeded(self, abccc_small):
        _, net = abccc_small
        a = random_split(net, seed=1)
        b = random_split(net, seed=1)
        c = random_split(net, seed=2)
        assert a == b
        assert len(a) == net.num_servers // 2
        assert a != c
