"""Permutation-strategy tests, incl. optimality of the locality order."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import AbcccParams, ServerAddress
from repro.core.permutation import (
    STRATEGIES,
    balanced_order,
    differing_levels,
    generate,
    locality_order,
    transfer_count,
)


def _addr(params: AbcccParams, digits, index=0) -> ServerAddress:
    return ServerAddress(tuple(digits), index)


class TestDifferingLevels:
    def test_basic(self):
        params = AbcccParams(3, 2, 2)
        src = _addr(params, (0, 1, 2))
        dst = _addr(params, (0, 2, 2))
        assert differing_levels(src, dst) == [1]

    def test_mismatched_orders_rejected(self):
        with pytest.raises(ValueError):
            differing_levels(ServerAddress((0,), 0), ServerAddress((0, 1), 0))


class TestStrategiesAreValidPermutations:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_permutes_exactly_the_differing_levels(self, strategy):
        params = AbcccParams(3, 3, 2)
        src = _addr(params, (0, 1, 2, 0), index=1)
        dst = _addr(params, (1, 1, 0, 2), index=3)
        order = generate(params, src, dst, strategy=strategy, seed=7)
        assert sorted(order) == differing_levels(src, dst)

    def test_random_is_seed_deterministic(self):
        params = AbcccParams(3, 3, 2)
        src = _addr(params, (0, 1, 2, 0))
        dst = _addr(params, (1, 2, 0, 1))
        a = generate(params, src, dst, strategy="random", seed=5)
        b = generate(params, src, dst, strategy="random", seed=5)
        assert a == b

    def test_unknown_strategy(self):
        params = AbcccParams(3, 1, 2)
        with pytest.raises(ValueError, match="unknown permutation strategy"):
            generate(params, _addr(params, (0, 0)), _addr(params, (1, 1)), strategy="zig")


class TestTransferCount:
    def test_empty_order_same_index(self):
        params = AbcccParams(3, 2, 2)
        assert transfer_count(params, 1, 1, []) == 0

    def test_empty_order_different_index(self):
        params = AbcccParams(3, 2, 2)
        assert transfer_count(params, 0, 1, []) == 1

    def test_counts_boundaries(self):
        params = AbcccParams(3, 3, 2)  # owner(i) == i
        # order [1, 0, 2]: start 1 (matches src), 1->0, 0->2, end 2 != dst 0.
        assert transfer_count(params, 1, 0, [1, 0, 2]) == 3

    def test_grouped_levels_free(self):
        params = AbcccParams(3, 3, 3)  # owners: [0, 0, 1, 1]
        assert transfer_count(params, 0, 1, [0, 1, 2, 3]) == 1


class TestLocalityOptimality:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_locality_minimises_transfers_over_all_orders(self, data):
        """Brute force: no permutation of the differing levels beats the
        locality order's transfer count."""
        n = data.draw(st.integers(min_value=2, max_value=3))
        k = data.draw(st.integers(min_value=1, max_value=3))
        s = data.draw(st.integers(min_value=2, max_value=3))
        params = AbcccParams(n, k, s)
        digits = lambda: tuple(
            data.draw(st.integers(min_value=0, max_value=n - 1))
            for _ in range(params.levels)
        )
        src = ServerAddress(
            digits(), data.draw(st.integers(0, params.crossbar_size - 1))
        )
        dst = ServerAddress(
            digits(), data.draw(st.integers(0, params.crossbar_size - 1))
        )
        levels = differing_levels(src, dst)
        order = locality_order(params, src, dst, levels)
        ours = transfer_count(params, src.index, dst.index, order)
        if len(levels) <= 6:
            best = min(
                transfer_count(params, src.index, dst.index, list(perm))
                for perm in itertools.permutations(levels)
            ) if levels else transfer_count(params, src.index, dst.index, [])
            assert ours == best

    def test_starts_with_source_group(self):
        params = AbcccParams(3, 3, 2)
        src = _addr(params, (0, 0, 0, 0), index=2)
        dst = _addr(params, (1, 1, 1, 1), index=0)
        order = locality_order(params, src, dst, [0, 1, 2, 3])
        assert order[0] == 2  # src owns level 2
        assert order[-1] == 0  # dst owns level 0


class TestBalancedRotation:
    def test_rotation_changes_start(self):
        params = AbcccParams(3, 3, 2)
        src = _addr(params, (0, 0, 0, 0))
        dst = _addr(params, (1, 1, 1, 1))
        levels = [0, 1, 2, 3]
        base = balanced_order(params, src, dst, levels, rotation=0)
        rotated = balanced_order(params, src, dst, levels, rotation=1)
        assert base != rotated
        assert sorted(base) == sorted(rotated) == levels

    def test_rotation_is_modular(self):
        params = AbcccParams(3, 2, 2)
        src = _addr(params, (0, 0, 0))
        dst = _addr(params, (1, 1, 1))
        levels = [0, 1, 2]
        assert balanced_order(params, src, dst, levels, 1) == balanced_order(
            params, src, dst, levels, 4
        )

    def test_empty_levels(self):
        params = AbcccParams(3, 2, 2)
        src = _addr(params, (0, 0, 0))
        assert balanced_order(params, src, src, [], rotation=3) == []
