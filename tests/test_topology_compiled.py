"""Compiled CSR graph: structure, kernels, cache invalidation."""

import pickle

import pytest

from repro.core import AbcccSpec
from repro.metrics.distance import logical_server_adjacency
from repro.routing.shortest import bfs_distances
from repro.topology.compiled import (
    CompiledGraph,
    compile_graph,
    compile_server_projection,
)
from repro.topology.graph import Network


class TestStructure:
    def test_names_and_index_roundtrip(self, abccc_small):
        _, net = abccc_small
        graph = compile_graph(net)
        assert len(graph.names) == len(net)
        for i, name in enumerate(graph.names):
            assert graph.index[name] == i

    def test_csr_matches_adjacency(self, abccc_small):
        _, net = abccc_small
        graph = compile_graph(net)
        assert int(graph.offsets[0]) == 0
        assert int(graph.offsets[-1]) == len(graph.neighbors) == 2 * net.num_links
        for name in net.node_names():
            i = graph.index[name]
            row = {
                graph.names[graph.neighbors[j]]
                for j in range(int(graph.offsets[i]), int(graph.offsets[i + 1]))
            }
            assert row == net.neighbors(name)
            assert graph.degree(i) == net.degree(name)

    def test_server_indices_follow_insertion_order(self, abccc_small):
        _, net = abccc_small
        graph = compile_graph(net)
        assert [graph.names[i] for i in graph.server_indices] == net.servers
        assert graph.num_servers == net.num_servers

    def test_edges_cover_links(self, abccc_small):
        _, net = abccc_small
        graph = compile_graph(net)
        assert graph.num_edges == net.num_links
        for e, (u, v) in enumerate(zip(graph.edge_u, graph.edge_v)):
            assert net.has_link(graph.names[u], graph.names[v])
            assert graph.edge_id(int(u), int(v)) == e
            assert graph.edge_id(int(v), int(u)) == e

    def test_projection_matches_logical_adjacency(self, abccc_small):
        _, net = abccc_small
        projection = compile_server_projection(net)
        expected = logical_server_adjacency(net)
        assert set(projection.names) == set(expected)
        for name, peers in expected.items():
            i = projection.index[name]
            row = {
                projection.names[projection.neighbors[j]]
                for j in range(
                    int(projection.offsets[i]), int(projection.offsets[i + 1])
                )
            }
            assert row == peers


class TestDtypes:
    def test_index_arrays_are_uint32(self, abccc_small):
        """Compact dtypes: every node/entry index array is uint32.

        Regression guard for the footprint halving — the engine ships
        these arrays to every worker and each masked trial keeps them
        resident, so a silent int64 revert doubles memory at scale.
        """
        numpy = pytest.importorskip("numpy")
        _, net = abccc_small
        graph = compile_graph(net)
        for attr in ("offsets", "neighbors", "server_indices", "edge_u", "edge_v"):
            assert getattr(graph, attr).dtype == numpy.uint32, attr
        projection = compile_server_projection(net)
        for attr in ("offsets", "neighbors", "server_indices", "edge_u", "edge_v"):
            assert getattr(projection, attr).dtype == numpy.uint32, attr

    def test_value_arrays_keep_signed_sentinels(self, abccc_small):
        """Distances and labels stay int64: they need the -1 sentinel."""
        numpy = pytest.importorskip("numpy")
        _, net = abccc_small
        graph = compile_graph(net)
        dist = graph.bfs_distances(0)
        assert numpy.asarray(dist).dtype == numpy.int64
        labels = graph.component_labels()
        assert numpy.asarray(labels).dtype == numpy.int64


class TestKernels:
    def test_bfs_matches_dict_bfs(self, abccc_small):
        _, net = abccc_small
        graph = compile_graph(net)
        for source in list(net.servers)[:4]:
            expected = bfs_distances(net, source)
            got = graph.bfs_distances_by_name(source)
            assert got == expected

    def test_bfs_flat_fallback_matches_numpy(self, abccc_small):
        _, net = abccc_small
        graph = compile_graph(net)
        src = graph.index[net.servers[0]]
        assert list(graph._bfs_flat(src)) == [int(d) for d in graph.bfs_distances(src)]

    def test_bfs_unreachable_is_minus_one(self):
        net = Network()
        net.add_server("a", ports=1)
        net.add_server("b", ports=1)
        graph = compile_graph(net)
        dist = graph.bfs_distances(graph.index["a"])
        assert int(dist[graph.index["a"]]) == 0
        assert int(dist[graph.index["b"]]) == -1

    def test_component_labels(self):
        net = Network()
        for name in ("a", "b", "c", "d"):
            net.add_server(name, ports=2)
        net.add_link("a", "b")
        net.add_link("c", "d")
        graph = compile_graph(net)
        labels = graph.component_labels()
        assert labels[graph.index["a"]] == labels[graph.index["b"]]
        assert labels[graph.index["c"]] == labels[graph.index["d"]]
        assert labels[graph.index["a"]] != labels[graph.index["c"]]

    def test_pickle_roundtrip(self, abccc_small):
        _, net = abccc_small
        graph = compile_graph(net)
        clone = pickle.loads(pickle.dumps(graph))
        assert isinstance(clone, CompiledGraph)
        assert clone.names == graph.names
        src = graph.index[net.servers[0]]
        assert [int(d) for d in clone.bfs_distances(src)] == [
            int(d) for d in graph.bfs_distances(src)
        ]


class TestCache:
    def test_compile_is_cached(self):
        net = AbcccSpec(3, 1, 2).build()
        assert compile_graph(net) is compile_graph(net)
        assert compile_server_projection(net) is compile_server_projection(net)

    def test_mutation_bumps_version_and_invalidates(self):
        net = AbcccSpec(3, 1, 2).build()
        before = compile_graph(net)
        version = net.version
        link = next(net.links())
        net.remove_link(link.u, link.v)
        assert net.version > version
        after = compile_graph(net)
        assert after is not before
        assert after.num_edges == before.num_edges - 1
        net.add_link(link.u, link.v)
        assert compile_graph(net) is not after

    def test_remove_node_invalidates(self):
        net = AbcccSpec(3, 1, 2).build()
        before = compile_graph(net)
        net.remove_node(net.servers[0])
        after = compile_graph(net)
        assert after is not before
        assert after.num_nodes == before.num_nodes - 1

    def test_copy_starts_cold(self):
        net = AbcccSpec(3, 1, 2).build()
        compile_graph(net)
        clone = net.copy()
        assert "_compiled" not in clone.meta

    def test_projection_and_link_views_cached_independently(self):
        net = AbcccSpec(3, 1, 2).build()
        link_view = compile_graph(net)
        server_view = compile_server_projection(net)
        assert link_view is not server_view
        assert compile_graph(net) is link_view
