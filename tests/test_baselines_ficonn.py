"""FiConn baseline: recursion, idle-port bookkeeping, dual-port discipline."""

import pytest

from repro.baselines.ficonn import (
    FiconnSpec,
    build_ficonn,
    ficonn_counts,
    parse_server,
    server_name,
)
from repro.metrics.distance import server_hop_stats
from repro.topology.validate import LinkPolicy, validate_network


class TestRecursion:
    def test_counts_level0(self):
        assert ficonn_counts(4, 0) == (4, 4)

    def test_counts_level1(self):
        # g = 4/2 + 1 = 3 copies, 12 servers; idle = 2 * 3 = 6
        assert ficonn_counts(4, 1) == (12, 6)

    def test_counts_level2(self):
        # g = 6/2 + 1 = 4 copies, 48 servers; idle = 3 * 4 = 12
        assert ficonn_counts(4, 2) == (48, 12)

    def test_odd_port_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            ficonn_counts(3, 1)
        with pytest.raises(ValueError):
            FiconnSpec(5, 1)


class TestStructure:
    @pytest.mark.parametrize("n,k", [(2, 1), (4, 1), (4, 2), (6, 1), (2, 3)])
    def test_built_counts_match_formulas(self, n, k):
        spec = FiconnSpec(n, k)
        net = spec.build()
        assert net.num_servers == spec.num_servers
        assert net.num_switches == spec.num_switches
        assert net.num_links == spec.num_links
        validate_network(net, LinkPolicy.direct_server())

    def test_dual_port_discipline(self):
        """No server ever uses more than 2 ports, at any level."""
        net = build_ficonn(4, 2)
        for server in net.servers:
            assert net.degree(server) <= 2

    def test_idle_servers_remain(self):
        """Exactly b_k servers keep an idle backup port after level k."""
        n, k = 4, 2
        net = build_ficonn(n, k)
        idle = [s for s in net.servers if net.degree(s) == 1]
        assert len(idle) == ficonn_counts(n, k)[1]

    def test_every_server_on_a_switch(self):
        net = build_ficonn(4, 1)
        for server in net.servers:
            assert any(net.node(v).is_switch for v in net.neighbors(server))

    def test_level_links_form_complete_graph_over_subcells(self):
        """At level 1 every pair of FiConn_0 copies is joined directly."""
        net = build_ficonn(4, 1)
        seen = set()
        for link in net.links():
            if net.node(link.u).is_server and net.node(link.v).is_server:
                a = parse_server(link.u)[0]
                b = parse_server(link.v)[0]
                seen.add(tuple(sorted((a, b))))
        g = 3  # b0/2 + 1
        assert seen == {(i, j) for i in range(g) for j in range(i + 1, g)}


class TestBehaviour:
    def test_diameter_within_bound(self):
        spec = FiconnSpec(4, 1)
        net = spec.build()
        assert server_hop_stats(net).diameter <= spec.diameter_server_hops

    def test_name_roundtrip(self):
        assert parse_server(server_name((1, 0, 3))) == (1, 0, 3)


class TestNativeRouting:
    def test_idle_lists_match_build(self):
        """The routing helper's idle lists mirror the builder's wiring:
        every level link the builder created is exactly the one the
        helper predicts."""
        from repro.baselines.ficonn import ficonn_level_link, idle_relative

        n, k = 4, 2
        net = build_ficonn(n, k)
        below = idle_relative(n, k - 1)
        g = len(below) // 2 + 1
        for u in range(g):
            for v in range(u + 1, g):
                left, right = ficonn_level_link(n, k, u, v)
                assert net.has_link(server_name(left), server_name(right))

    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (6, 1), (2, 3)])
    def test_routes_valid_and_bounded(self, n, k):
        import random

        spec = FiconnSpec(n, k)
        net = spec.build()
        rng = random.Random(8)
        bound = 2 ** (k + 1) - 1
        for _ in range(40):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            route.validate(net)
            assert route.source == src and route.destination == dst
            assert route.server_hops(net) <= bound

    def test_same_cell_via_switch(self):
        from repro.baselines.ficonn import ficonn_route

        net = build_ficonn(4, 1)
        route = ficonn_route(4, 1, (0, 0), (0, 3))
        route.validate(net)
        assert route.link_hops == 2

    def test_self_route(self):
        from repro.baselines.ficonn import ficonn_route

        assert ficonn_route(4, 1, (1, 2), (1, 2)).link_hops == 0

    def test_wrong_length_rejected(self):
        from repro.baselines.ficonn import ficonn_route
        from repro.routing.base import RoutingError

        with pytest.raises(RoutingError, match="digits"):
            ficonn_route(4, 1, (0,), (1, 1))

    def test_near_shortest_on_average(self):
        """TOR is not shortest-path but stays within 2x of BFS means."""
        import random

        from repro.routing.shortest import bfs_path

        spec = FiconnSpec(4, 2)
        net = spec.build()
        rng = random.Random(9)
        routed = shortest = 0
        for _ in range(50):
            src, dst = rng.sample(net.servers, 2)
            routed += spec.route(net, src, dst).server_hops(net)
            shortest += bfs_path(net, src, dst).server_hops(net)
        assert routed <= 2 * shortest
