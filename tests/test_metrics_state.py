"""Forwarding-state accounting tests."""

import pytest

from repro.core import AbcccSpec
from repro.metrics.state import (
    BYTES_PER_ENTRY,
    algorithmic_state,
    state_ratio,
    table_state,
)


@pytest.fixture(scope="module")
def instance():
    spec = AbcccSpec(3, 1, 2)
    return spec, spec.build()


class TestTableState:
    def test_every_node_routes_to_every_server(self, instance):
        _, net = instance
        stats = table_state(net)
        # Each of the |V| nodes holds an entry per server destination,
        # minus itself when it is a server.
        servers = net.num_servers
        expected_total = sum(
            servers - (1 if net.node(n).is_server else 0)
            for n in net.node_names()
        )
        assert stats.total_entries == expected_total
        assert stats.max_entries == servers  # switches store all servers

    def test_restricted_destinations(self, instance):
        _, net = instance
        stats = table_state(net, destinations=net.servers[:3])
        assert stats.max_entries == 3

    def test_bytes(self, instance):
        _, net = instance
        stats = table_state(net)
        assert stats.total_bytes == stats.total_entries * BYTES_PER_ENTRY


class TestAlgorithmicState:
    def test_constant_per_node(self, instance):
        _, net = instance
        stats = algorithmic_state(net, address_digits=2)
        assert stats.mean_entries == 2.0
        assert stats.max_entries == 2
        assert stats.total_entries == 2 * len(net)


class TestRatio:
    def test_ratio_grows_with_size(self):
        small = AbcccSpec(2, 1, 2).build()
        large = AbcccSpec(3, 1, 2).build()
        ratio_small = state_ratio(table_state(small), algorithmic_state(small, 2))
        ratio_large = state_ratio(table_state(large), algorithmic_state(large, 2))
        assert ratio_large > ratio_small > 1.0

    def test_zero_algorithmic_state(self, instance):
        _, net = instance
        zero = algorithmic_state(net, address_digits=0)
        assert state_ratio(table_state(net), zero) == float("inf")
