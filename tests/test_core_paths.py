"""Parallel-path tests: rotation families, disjointness, connectivity."""

import itertools
import random

import pytest

from repro.core.address import AbcccParams, ServerAddress
from repro.core.paths import (
    crossbar_disjoint_routes,
    edge_disjoint_path_count,
    intermediate_crossbars,
    node_disjoint_path_count,
    rotation_routes,
)
from repro.core.topology import build_abccc


class TestRotationRoutes:
    def test_one_route_per_rotation(self):
        params = AbcccParams(3, 2, 2)
        src = ServerAddress((0, 0, 0), 0)
        dst = ServerAddress((1, 1, 1), 0)
        routes = rotation_routes(params, src, dst)
        assert len(routes) == 3

    def test_fewer_when_digits_agree(self):
        params = AbcccParams(3, 2, 2)
        src = ServerAddress((0, 0, 0), 0)
        dst = ServerAddress((1, 0, 0), 0)
        assert len(rotation_routes(params, src, dst)) == 1

    def test_same_crossbar(self):
        params = AbcccParams(3, 2, 2)
        src = ServerAddress((0, 0, 0), 0)
        dst = ServerAddress((0, 0, 0), 1)
        routes = rotation_routes(params, src, dst)
        assert len(routes) == 1
        assert routes[0].link_hops == 2

    def test_all_routes_valid(self, abccc_medium):
        spec, net = abccc_medium
        params = spec.abccc
        rng = random.Random(4)
        for _ in range(15):
            src = ServerAddress.parse(rng.choice(net.servers))
            dst = ServerAddress.parse(rng.choice(net.servers))
            for route in rotation_routes(params, src, dst):
                route.validate(net)


class TestDisjointness:
    def test_full_family_disjoint_when_all_digits_differ(self):
        """The paper's parallel-path claim: k+1 rotations give pairwise
        crossbar-disjoint routes when every digit differs."""
        for params in (AbcccParams(2, 2, 2), AbcccParams(3, 2, 2), AbcccParams(3, 3, 2)):
            src = ServerAddress(tuple([0] * params.levels), 0)
            dst = ServerAddress(tuple([1] * params.levels), 0)
            routes = rotation_routes(params, src, dst)
            assert len(routes) == params.levels
            families = [intermediate_crossbars(r) for r in routes]
            for a, b in itertools.combinations(families, 2):
                assert not (a & b)
            # Greedy filter keeps everything.
            assert len(crossbar_disjoint_routes(params, src, dst)) == params.levels

    def test_greedy_filter_yields_disjoint_family(self):
        params = AbcccParams(3, 2, 2)
        rng = random.Random(8)
        for _ in range(20):
            total = params.num_crossbars * params.crossbar_size
            src = ServerAddress.from_rank(params, rng.randrange(total))
            dst = ServerAddress.from_rank(params, rng.randrange(total))
            chosen = crossbar_disjoint_routes(params, src, dst)
            families = [intermediate_crossbars(r) for r in chosen]
            for a, b in itertools.combinations(families, 2):
                assert not (a & b)

    def test_intermediate_crossbars_excludes_endpoints(self):
        params = AbcccParams(3, 1, 2)
        src = ServerAddress((0, 0), 0)
        dst = ServerAddress((1, 1), 1)
        for route in rotation_routes(params, src, dst):
            inter = intermediate_crossbars(route)
            assert src.digits not in inter
            assert dst.digits not in inter


class TestGroundTruthConnectivity:
    def test_edge_disjoint_count_equals_server_ports(self, abccc_small):
        """A dual-port server supports exactly 2 edge-disjoint paths."""
        spec, net = abccc_small
        src, dst = net.servers[0], net.servers[-1]
        assert edge_disjoint_path_count(net, src, dst) == spec.s

    def test_node_disjoint_count_equals_min_degree(self, abccc_s3):
        """Connectivity saturates the endpoint degrees.  Note: the *last*
        server of a crossbar may own fewer levels than s - 1 and thus have
        spare (unwired) ports, so the cap is the wired degree, not s."""
        spec, net = abccc_s3
        src, dst = net.servers[0], net.servers[-1]
        expected = min(net.degree(src), net.degree(dst))
        assert node_disjoint_path_count(net, src, dst) == expected

    def test_bcube_connectivity_is_k_plus_1(self, bcube_small):
        spec, net = bcube_small
        src, dst = net.servers[0], net.servers[-1]
        assert edge_disjoint_path_count(net, src, dst) == spec.k + 1
