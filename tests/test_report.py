"""Topology report tests (library function + CLI command)."""

import pytest

from repro.baselines import FatTreeSpec, HypercubeSpec
from repro.cli import main
from repro.core import AbcccSpec
from repro.report import topology_report


class TestReport:
    def test_abccc_report_sections(self):
        text = topology_report(AbcccSpec(3, 1, 2))
        assert "ABCCC(n=3, k=1, s=2)" in text
        assert "servers        : 18" in text
        assert "crossbar size  : 2" in text
        assert "expected route" in text
        assert "conformance    : OK" in text
        assert "invariants     : OK" in text
        assert "diameter" in text

    def test_measured_diameter_matches_analytic(self):
        spec = AbcccSpec(3, 1, 2)
        text = topology_report(spec)
        assert f"diameter     : {spec.diameter_link_hops} link hops" in text

    def test_non_abccc_topology(self):
        text = topology_report(FatTreeSpec(4))
        assert "conformance" not in text
        assert "invariants     : OK" in text

    def test_measurement_skip_for_large_instances(self):
        text = topology_report(AbcccSpec(4, 3, 2), max_measure_nodes=100)
        assert "measurements skipped" in text
        assert "diameter     :" not in text

    def test_switchless_inventory(self):
        text = topology_report(HypercubeSpec(4))
        assert "switches       : 0" in text

    def test_sampled_distances_flagged(self):
        text = topology_report(AbcccSpec(3, 2, 2), sample_sources=8)
        assert "8-source sample" in text


class TestCliReport:
    def test_report_command(self, capsys):
        code = main(["report", "abccc", "-p", "n=3", "-p", "k=1", "-p", "s=2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "closed-form properties" in out
        assert "conformance    : OK" in out

    def test_report_respects_measure_cap(self, capsys):
        code = main(
            ["report", "abccc", "-p", "n=4", "-p", "k=3", "-p", "s=2",
             "--max-measure-nodes", "10"]
        )
        assert code == 0
        assert "measurements skipped" in capsys.readouterr().out
