"""ScenarioCache and query-engine tests (no HTTP, no workers)."""

import pytest

from repro.core import AbcccSpec
from repro.serve.engine import execute, resolve_server
from repro.serve.protocol import EMPTY_SCENARIO_KEY, ServeError, parse_query, scenario_key
from repro.serve.scenario import ScenarioCache


@pytest.fixture(scope="module")
def graph():
    return AbcccSpec(3, 1, 2).compiled()


@pytest.fixture()
def cache(graph):
    return ScenarioCache(graph, capacity=3)


def run(graph, cache, op, params):
    return execute(graph, parse_query(op, params), cache)


class TestScenarioCache:
    def test_baseline_masked_graph_is_cached(self, cache):
        first = cache.get(EMPTY_SCENARIO_KEY)
        second = cache.get(EMPTY_SCENARIO_KEY)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self, graph, cache):
        names = [graph.names[i] for i in graph.server_indices[:4]]
        for name in names:
            cache.get(scenario_key([name]))
        assert len(cache) == 3
        assert cache.evictions == 1
        # The first scenario was evicted; re-fetching it is a miss.
        misses = cache.misses
        cache.get(scenario_key([names[0]]))
        assert cache.misses == misses + 1

    def test_unknown_name_is_bad_request(self, cache):
        with pytest.raises(ServeError) as exc:
            cache.get(scenario_key(["no-such-node"]))
        assert exc.value.code == "bad-request"
        assert "no-such-node" in exc.value.message
        # A failed build never occupies a cache slot.
        assert len(cache) == 0

    def test_stats_shape(self, cache):
        cache.get(EMPTY_SCENARIO_KEY)
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["capacity"] == 3
        assert stats["misses"] == 1


class TestResolveServer:
    def test_by_name_and_ordinal(self, graph):
        first = graph.server_indices[0]
        assert resolve_server(graph, graph.names[first]) == first
        assert resolve_server(graph, "0") == first

    def test_bad_tokens(self, graph):
        for token in ("nope", "-1", str(len(graph.server_indices))):
            with pytest.raises(ServeError) as exc:
                resolve_server(graph, token)
            assert exc.value.code == "bad-request"


class TestExecute:
    def test_route_has_path_and_hops(self, graph, cache):
        result = run(graph, cache, "route", {"src": "0", "dst": "5"})
        assert result["status"] == "ok"
        assert result["reachable"] is True
        assert result["link_hops"] == len(result["path"]) - 1
        assert result["path"][0] == graph.names[graph.server_indices[0]]

    def test_distance_skips_path(self, graph, cache):
        result = run(graph, cache, "distance", {"src": "0", "dst": "5"})
        assert result["reachable"] is True
        assert "path" not in result

    def test_route_same_node(self, graph, cache):
        result = run(graph, cache, "route", {"src": "3", "dst": "3"})
        assert result["link_hops"] == 0
        # src echoes the request token; the path holds resolved names.
        assert result["src"] == "3"
        assert result["path"] == [graph.names[graph.server_indices[3]]]

    def test_dead_endpoint_is_degraded_not_error(self, graph, cache):
        name = graph.names[graph.server_indices[0]]
        result = run(
            graph,
            cache,
            "route",
            {"src": name, "dst": "5", "scenario": {"dead_servers": [name]}},
        )
        assert result["status"] == "degraded"
        assert result["reachable"] is False

    def test_avoid_excludes_nodes(self, graph, cache):
        base = run(graph, cache, "route", {"src": "0", "dst": "5"})
        middle = base["path"][1]
        detour = run(
            graph, cache, "route", {"src": "0", "dst": "5", "avoid": [middle]}
        )
        assert middle not in detour["path"]
        assert detour["link_hops"] >= base["link_hops"]

    def test_whatif_healthy(self, graph, cache):
        result = run(graph, cache, "whatif", {"sample_pairs": 10})
        assert result["status"] == "ok"
        assert result["alive_servers"] == result["num_servers"]
        assert result["largest_component_fraction"] == 1.0

    def test_whatif_dead_switch(self, graph, cache):
        switch = next(
            name for name in graph.names if not name.startswith("s")
        )
        result = run(
            graph, cache, "whatif", {"dead_switches": [switch], "sample_pairs": 10}
        )
        assert result["dead_switches"] == 1
        assert result["alive_servers"] == result["num_servers"]

    def test_ping(self, graph, cache):
        result = run(graph, cache, "ping", {})
        assert result["pong"] is True
