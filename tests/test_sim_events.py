"""Discrete-event engine tests: ordering, ties, cancellation, budgets."""

import pytest

from repro.sim.events import SimulationError, Simulator


class TestOrdering:
    def test_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(3.0, lambda: log.append("c"))
        sim.schedule_at(1.0, lambda: log.append("a"))
        sim.schedule_at(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_tie_break(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_relative_scheduling(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(1.5, lambda: log.append(("second", sim.now)))

        sim.schedule_at(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 2.5)]


class TestErrors:
    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="negative"):
            sim.schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_not_run(self):
        sim = Simulator()
        log = []
        handle = sim.schedule_at(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule_at(1.0, lambda: None)
        drop = sim.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep.time == 1.0


class TestBudgets:
    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule_at(1.0, lambda: log.append(1))
        sim.schedule_at(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run()
        assert log == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule_at(float(i), lambda i=i: log.append(i))
        sim.run(max_events=3)
        assert log == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4
