"""ECMP router tests (shortest-path compliance, affinity, path counting)."""

import itertools

import networkx as nx
import pytest

from repro.routing.base import RoutingError
from repro.routing.ecmp import EcmpRouter, fnv1a
from repro.routing.shortest import shortest_distance


class TestFnv1a:
    def test_deterministic(self):
        assert fnv1a("hello") == fnv1a("hello")

    def test_distinct_inputs_differ(self):
        assert fnv1a("a") != fnv1a("b")

    def test_known_vector(self):
        # FNV-1a of empty string is the offset basis.
        assert fnv1a("") == 0xCBF29CE484222325


class TestEcmpRouting:
    def test_routes_are_shortest(self, fattree_small):
        _, net = fattree_small
        router = EcmpRouter(net)
        servers = net.servers
        for src, dst in itertools.islice(itertools.combinations(servers, 2), 40):
            route = router.route(net, src, dst, flow_id="f")
            route.validate(net)
            assert route.link_hops == shortest_distance(net, src, dst)

    def test_flow_affinity(self, fattree_small):
        _, net = fattree_small
        router = EcmpRouter(net)
        src, dst = net.servers[0], net.servers[-1]
        first = router.route(net, src, dst, flow_id="flow-1")
        again = router.route(net, src, dst, flow_id="flow-1")
        assert first.nodes == again.nodes

    def test_flows_spread_over_paths(self, fattree_small):
        _, net = fattree_small
        router = EcmpRouter(net)
        src, dst = net.servers[0], net.servers[-1]
        distinct = {
            router.route(net, src, dst, flow_id=f"flow-{i}").nodes for i in range(64)
        }
        # FatTree(4) has 4 shortest inter-pod paths; hashing must find > 1.
        assert len(distinct) > 1

    def test_self_route(self, fattree_small):
        _, net = fattree_small
        route = EcmpRouter(net).route(net, net.servers[0], net.servers[0])
        assert route.link_hops == 0

    def test_bound_to_network(self, fattree_small, tiny_net):
        _, net = fattree_small
        router = EcmpRouter(net)
        with pytest.raises(RoutingError, match="bound"):
            router.route(tiny_net, "a", "b")

    def test_unreachable(self, tiny_net):
        tiny_net.add_server("island", ports=1)
        router = EcmpRouter(tiny_net)
        with pytest.raises(RoutingError, match="unreachable"):
            router.route(tiny_net, "a", "island")


class TestNextHopsAndCounts:
    def test_next_hops_decrease_distance(self, fattree_small):
        _, net = fattree_small
        router = EcmpRouter(net)
        src, dst = net.servers[0], net.servers[-1]
        base = shortest_distance(net, src, dst)
        for hop in router.next_hops(src, dst):
            assert shortest_distance(net, hop, dst) == base - 1

    def test_path_count_matches_enumeration(self, fattree_small):
        _, net = fattree_small
        router = EcmpRouter(net)
        graph = net.to_networkx()
        src, dst = net.servers[0], net.servers[-1]
        expected = len(list(nx.all_shortest_paths(graph, src, dst)))
        assert router.path_count(src, dst) == expected

    def test_fattree_interpod_path_count(self, fattree_small):
        spec, net = fattree_small
        router = EcmpRouter(net)
        # Inter-pod pairs have (p/2)^2 shortest paths in a p-ary fat-tree.
        assert router.path_count("h0.0.0", "h1.0.0") == (spec.p // 2) ** 2

    def test_intrapod_same_edge_path_count(self, fattree_small):
        _, net = fattree_small
        router = EcmpRouter(net)
        assert router.path_count("h0.0.0", "h0.0.1") == 1
