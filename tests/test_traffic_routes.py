"""RouteSet construction and batch route extraction, healthy + degraded."""

import numpy as np
import pytest

from repro.core import AbcccSpec
from repro.core.address import ServerAddress
from repro.core.routing import abccc_route
from repro.faults import MaskedGraph, random_index_failures
from repro.routing.batch import (
    abccc_batch_routes,
    batch_routes,
    bfs_batch_routes,
    bfs_node_paths,
)
from repro.topology.compiled import compile_graph
from repro.topology.fastbuild import fast_compiled
from repro.traffic import RouteSet, RouteSetError, edge_id_array, generate_matrix


@pytest.fixture(scope="module")
def fast_graph():
    return fast_compiled(AbcccSpec(3, 2, 2))


@pytest.fixture(scope="module")
def object_graph():
    return compile_graph(AbcccSpec(3, 2, 2).build())


def _oracle_edge_ids(graph, src_ordinal, dst_ordinal):
    """Edge-id sequence of the per-flow ABCCC router, via names."""
    from repro.core.topology import AbcccParams

    lay = graph.layout
    c = lay.crossbar_size
    params = AbcccParams(n=lay.n, k=lay.k, s=lay.s)

    def addr(o):
        return ServerAddress(lay.crossbar_digits(o // c), o % c)

    route = abccc_route(params, addr(src_ordinal), addr(dst_ordinal))
    nodes = [graph.index[name] for name in route.nodes]
    return [graph.edge_id(u, v) for u, v in zip(nodes, nodes[1:])]


class TestEdgeIdArray:
    def test_round_trip(self, fast_graph):
        u = np.asarray(fast_graph.edge_u[:50], dtype=np.int64)
        v = np.asarray(fast_graph.edge_v[:50], dtype=np.int64)
        ids = edge_id_array(fast_graph, u, v)
        assert np.array_equal(ids, np.arange(50))
        # direction-insensitive
        ids_rev = edge_id_array(fast_graph, v, u)
        assert np.array_equal(ids_rev, np.arange(50))

    def test_non_edge_rejected(self, fast_graph):
        servers = np.asarray(fast_graph.server_indices)
        with pytest.raises(RouteSetError, match="no edge"):
            edge_id_array(
                fast_graph,
                np.array([servers[0]]),
                np.array([servers[-1]]),
            )


class TestArithmeticRoutes:
    def test_matches_per_flow_oracle(self, fast_graph):
        rng = np.random.default_rng(0)
        S = fast_graph.num_servers
        src = rng.integers(0, S, size=150)
        gap = rng.integers(1, S, size=150)
        dst = (src + gap) % S
        routes = abccc_batch_routes(fast_graph, src, dst)
        offsets = routes.offsets
        for i in range(len(src)):
            expect = _oracle_edge_ids(fast_graph, int(src[i]), int(dst[i]))
            got = routes.edge_ids[offsets[i] : offsets[i + 1]].tolist()
            assert got == expect, f"flow {i}: {got} != {expect}"

    def test_multiple_shapes(self):
        for spec in (AbcccSpec(2, 2, 2), AbcccSpec(4, 1, 3)):
            g = fast_compiled(spec)
            rng = np.random.default_rng(1)
            src = rng.integers(0, g.num_servers, size=60)
            gap = rng.integers(1, g.num_servers, size=60)
            dst = (src + gap) % g.num_servers
            routes = abccc_batch_routes(g, src, dst)
            offsets = routes.offsets
            for i in range(60):
                assert (
                    routes.edge_ids[offsets[i] : offsets[i + 1]].tolist()
                    == _oracle_edge_ids(g, int(src[i]), int(dst[i]))
                )


class TestBfsRoutes:
    def test_paths_are_shortest(self, object_graph):
        g = object_graph
        servers = np.asarray(g.server_indices, dtype=np.int64)
        src = servers[:20]
        dst = servers[-20:]
        paths = bfs_node_paths(g, src, dst)
        for s, d, path in zip(src, dst, paths):
            dist = g.bfs_distances(int(s))
            assert path[0] == s and path[-1] == d
            assert len(path) - 1 == dist[int(d)]

    def test_routeset_consistent(self, object_graph):
        g = object_graph
        servers = np.asarray(g.server_indices, dtype=np.int64)
        routes = bfs_batch_routes(g, servers[:10], servers[10:20])
        assert routes.num_flows == 10
        assert routes.num_unreachable == 0
        assert routes.hop_counts.min() >= 1


class TestDispatch:
    def test_fast_graph_uses_arithmetic(self, fast_graph):
        m = generate_matrix("permutation", fast_graph.num_servers, seed=2)
        routes = batch_routes(fast_graph, m)
        servers = np.asarray(fast_graph.server_indices, dtype=np.int64)
        offsets = routes.offsets
        for i in range(0, m.num_flows, 7):
            assert (
                routes.edge_ids[offsets[i] : offsets[i + 1]].tolist()
                == _oracle_edge_ids(fast_graph, int(m.src[i]), int(m.dst[i]))
            )
        routes.validate_against_matrix(m)

    def test_object_graph_uses_bfs(self, object_graph):
        m = generate_matrix("permutation", len(object_graph.server_indices), seed=2)
        routes = batch_routes(object_graph, m)
        assert routes.num_unreachable == 0
        # BFS paths are shortest: spot-check against per-source distances
        servers = np.asarray(object_graph.server_indices, dtype=np.int64)
        hops = routes.hop_counts
        for i in range(0, m.num_flows, 9):
            dist = object_graph.bfs_distances(int(servers[m.src[i]]))
            assert hops[i] == dist[int(servers[m.dst[i]])]


class TestDegraded:
    def test_dead_endpoint_flows_marked_unreachable(self, fast_graph):
        m = generate_matrix("permutation", fast_graph.num_servers, seed=5)
        servers = np.asarray(fast_graph.server_indices, dtype=np.int64)
        dead_node = int(servers[m.src[0]])
        masked = MaskedGraph.from_indices(fast_graph, dead_nodes=[dead_node])
        routes = batch_routes(fast_graph, m, masked)
        dead_ordinal = int(np.flatnonzero(servers == dead_node)[0])
        affected = (m.src == dead_ordinal) | (m.dst == dead_ordinal)
        assert np.array_equal(routes.unreachable, affected)
        assert routes.hop_counts[affected].max() == 0

    def test_broken_routes_repaired_around_dead_switch(self, fast_graph):
        m = generate_matrix("permutation", fast_graph.num_servers, seed=5)
        healthy = batch_routes(fast_graph, m)
        # kill a switch that some healthy route crosses
        plan = random_index_failures(fast_graph, switch_fraction=0.05, seed=3)
        masked = MaskedGraph.from_indices(fast_graph, dead_nodes=plan.dead_nodes)
        routes = batch_routes(fast_graph, m, masked)
        assert routes.num_unreachable == 0  # endpoints are servers, all alive
        # every repaired route avoids every dead node
        node_alive = np.asarray(masked.node_alive)
        eu = np.asarray(fast_graph.edge_u, dtype=np.int64)
        ev = np.asarray(fast_graph.edge_v, dtype=np.int64)
        used = np.unique(routes.edge_ids)
        assert node_alive[eu[used]].all() and node_alive[ev[used]].all()
        # and unaffected flows keep their arithmetic route
        offsets_h, offsets_d = healthy.offsets, routes.offsets
        dead_set = set(int(n) for n in plan.dead_nodes)
        for i in range(m.num_flows):
            h = healthy.edge_ids[offsets_h[i] : offsets_h[i + 1]]
            d = routes.edge_ids[offsets_d[i] : offsets_d[i + 1]]
            touched = any(
                int(eu[e]) in dead_set or int(ev[e]) in dead_set for e in h
            )
            if not touched:
                assert np.array_equal(h, d)

    def test_dead_links_rerouted(self, fast_graph):
        m = generate_matrix("permutation", fast_graph.num_servers, seed=6)
        plan = random_index_failures(fast_graph, link_fraction=0.02, seed=9)
        masked = MaskedGraph.from_indices(fast_graph, dead_edges=plan.dead_edges)
        routes = batch_routes(fast_graph, m, masked)
        dead = set(int(e) for e in plan.dead_edges)
        assert not dead.intersection(routes.edge_ids.tolist())


class TestRouteSetHelpers:
    def test_crossings_and_load(self, fast_graph):
        m = generate_matrix("all_to_all", fast_graph.num_servers, seed=1, max_flows=80)
        routes = batch_routes(fast_graph, m)
        crossings = routes.crossings()
        assert crossings.sum() == routes.edge_ids.size
        assert routes.max_link_load() == crossings.max()  # unit capacities

    def test_validate_against_matrix_rejects_mismatch(self, fast_graph):
        m = generate_matrix("permutation", fast_graph.num_servers, seed=1)
        other = generate_matrix("uniform", fast_graph.num_servers, seed=1)
        routes = batch_routes(fast_graph, m)
        with pytest.raises(RouteSetError):
            routes.validate_against_matrix(other)
