"""Unit tests for the Network container."""

import pytest

from repro.topology.graph import Network, NetworkError
from repro.topology.node import NodeKind


@pytest.fixture()
def net() -> Network:
    net = Network("t")
    net.add_server("a", ports=2)
    net.add_server("b", ports=2)
    net.add_switch("w", ports=3)
    net.add_link("a", "w")
    net.add_link("b", "w")
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self, net):
        with pytest.raises(NetworkError, match="duplicate node"):
            net.add_server("a", ports=1)

    def test_duplicate_link_rejected(self, net):
        with pytest.raises(NetworkError, match="duplicate link"):
            net.add_link("w", "a")

    def test_link_to_unknown_node_rejected(self, net):
        with pytest.raises(NetworkError, match="unknown node"):
            net.add_link("a", "ghost")

    def test_port_budget_enforced(self, net):
        net.add_server("c", ports=1)
        net.add_link("c", "w")  # switch now full (3 ports)
        net.add_server("d", ports=1)
        with pytest.raises(NetworkError, match="no free port"):
            net.add_link("d", "w")

    def test_counts(self, net):
        assert net.num_servers == 2
        assert net.num_switches == 1
        assert net.num_links == 2
        assert len(net) == 3


class TestQueries:
    def test_contains(self, net):
        assert "a" in net
        assert "ghost" not in net

    def test_node_lookup(self, net):
        assert net.node("w").kind is NodeKind.SWITCH
        with pytest.raises(NetworkError):
            net.node("ghost")

    def test_neighbors(self, net):
        assert net.neighbors("w") == {"a", "b"}
        assert net.degree("w") == 2

    def test_link_lookup_is_order_insensitive(self, net):
        assert net.link("w", "a") is net.link("a", "w")
        assert net.has_link("b", "w")
        assert not net.has_link("a", "b")

    def test_servers_and_switches_lists(self, net):
        assert net.servers == ["a", "b"]
        assert net.switches == ["w"]

    def test_switches_by_role(self):
        net = Network()
        net.add_switch("w1", ports=2, role="level")
        net.add_switch("w2", ports=2, role="crossbar")
        assert net.switches_by_role("level") == ["w1"]

    def test_find_by_address(self):
        net = Network()
        net.add_server("a", ports=1, address=(0, 1))
        assert net.find_by_address((0, 1)) == "a"
        assert net.find_by_address((9, 9)) is None

    def test_find_by_address_sees_late_additions(self):
        net = Network()
        net.add_server("a", ports=1, address=1)
        assert net.find_by_address(1) == "a"
        net.add_server("b", ports=1, address=2)
        assert net.find_by_address(2) == "b"


class TestRemoval:
    def test_remove_link(self, net):
        net.remove_link("a", "w")
        assert not net.has_link("a", "w")
        assert net.degree("a") == 0
        assert net.degree("w") == 1

    def test_remove_missing_link(self, net):
        with pytest.raises(NetworkError, match="no link"):
            net.remove_link("a", "b")

    def test_remove_node_drops_incident_links(self, net):
        net.remove_node("w")
        assert "w" not in net
        assert net.num_links == 0

    def test_remove_missing_node(self, net):
        with pytest.raises(NetworkError, match="no node"):
            net.remove_node("ghost")

    def test_port_freed_after_removal(self, net):
        net.add_server("c", ports=1)
        net.add_link("c", "w")  # switch full
        net.remove_link("a", "w")
        net.add_server("d", ports=1)
        net.add_link("d", "w")  # reuses the freed port
        assert net.has_link("d", "w")


class TestCopies:
    def test_copy_is_independent(self, net):
        clone = net.copy()
        clone.remove_node("a")
        assert "a" in net
        assert net.has_link("a", "w")

    def test_copy_drops_private_meta(self, net):
        net.meta["params"] = 1
        net.meta["_cache"] = 2
        clone = net.copy()
        assert clone.meta == {"params": 1}

    def test_subgraph_without_nodes(self, net):
        sub = net.subgraph_without(dead_nodes=["a"])
        assert "a" not in sub
        assert "a" in net

    def test_subgraph_without_links(self, net):
        sub = net.subgraph_without(dead_links=[("w", "a")])
        assert not sub.has_link("a", "w")
        assert sub.num_servers == 2

    def test_subgraph_tolerates_missing_targets(self, net):
        sub = net.subgraph_without(dead_nodes=["ghost"], dead_links=[("a", "b")])
        assert len(sub) == len(net)


class TestNetworkxExport:
    def test_roundtrip_counts(self, net):
        graph = net.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.nodes["w"]["kind"] == "switch"
        assert graph.edges["a", "w"]["capacity"] == 1.0
