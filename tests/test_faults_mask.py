"""Masked-CSR trial parity: identical results to the legacy copy path.

The acceptance bar for the masking fast path is *identity*, not
closeness: the same scenario must produce the same connection ratio and
largest-component fraction whether it is applied as a mask over the
compiled graph or via ``subgraph_without`` + a cold recompile.  The
scenarios here are randomised across ABCCC and two baseline families
and include dead links, which exercise the entry-mask path.
"""

import pytest

from repro.faults.mask import (
    MaskedGraph,
    masked_connection_ratio,
    masked_largest_component_fraction,
)
from repro.faults.plan import FaultModel, random_failures
from repro.faults.sweep import degradation_sweep
from repro.metrics.connectivity import (
    connection_ratio,
    largest_component_fraction,
)
from repro.topology.compiled import compile_graph

FAMILIES = ["abccc_medium", "abccc_s3", "bcube_small", "fattree_small"]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", range(4))
class TestMetricParity:
    def _scenario(self, net, seed):
        return random_failures(
            net,
            server_fraction=0.15,
            switch_fraction=0.10,
            link_fraction=0.05,
            seed=seed,
        ).scenario

    def test_connection_ratio_identical(self, family, seed, request):
        _, net = request.getfixturevalue(family)
        scenario = self._scenario(net, seed)
        assert masked_connection_ratio(
            net, scenario, sample_pairs=120, seed=seed
        ) == connection_ratio(net, scenario, sample_pairs=120, seed=seed)

    def test_largest_component_identical(self, family, seed, request):
        _, net = request.getfixturevalue(family)
        scenario = self._scenario(net, seed)
        assert masked_largest_component_fraction(
            net, scenario
        ) == largest_component_fraction(net, scenario)


class TestMaskedGraph:
    def test_alive_servers_match_subgraph_order(self, abccc_medium):
        _, net = abccc_medium
        scenario = random_failures(net, server_fraction=0.3, seed=2).scenario
        masked = MaskedGraph(compile_graph(net), scenario)
        sub = net.subgraph_without(dead_nodes=scenario.dead_servers)
        assert masked.alive_servers() == sub.servers
        assert masked.num_alive_servers() == sub.num_servers

    def test_connected_respects_dead_links(self, tiny_net):
        from repro.faults.plan import explicit_failures

        plan = explicit_failures(dead_links=(("a", "sw"),))
        masked = MaskedGraph(compile_graph(tiny_net), plan)
        assert not masked.connected("a", "b")
        assert masked.connected("b", "sw")

    def test_dead_endpoint_disconnects(self, tiny_net):
        from repro.faults.plan import explicit_failures

        plan = explicit_failures(dead_servers=("a",))
        masked = MaskedGraph(compile_graph(tiny_net), plan)
        assert not masked.connected("a", "b")
        assert masked.component_labels()[compile_graph(tiny_net).index["a"]] == -1

    def test_unknown_failures_ignored_like_legacy(self, tiny_net):
        from repro.faults.plan import explicit_failures

        plan = explicit_failures(
            dead_servers=("ghost",), dead_links=(("ghost", "sw"),)
        )
        masked = MaskedGraph(compile_graph(tiny_net), plan)
        assert masked.connection_ratio(sample_pairs=10, seed=0) == 1.0


class TestDegenerateScenarios:
    """Mass-failure edge cases the serve what-if path leans on.

    ``sweep_view`` and the ratio helpers must answer — not crash, not
    divide by zero — when a whole rack dies, when no server survives,
    and when literally every node is masked off.
    """

    def _masked(self, net, **kwargs):
        from repro.faults.plan import explicit_failures

        return MaskedGraph(compile_graph(net), explicit_failures(**kwargs))

    def test_entire_rack_dead(self, abccc_medium):
        _, net = abccc_medium
        graph = compile_graph(net)
        rack = sorted(
            {name.rsplit("/", 1)[0] for name in net.servers}
        )[0]
        doomed = tuple(n for n in net.servers if n.startswith(rack + "/"))
        assert doomed, "fixture has no rack-shaped server group"
        masked = self._masked(net, dead_servers=doomed)
        assert masked.num_alive_servers() == len(net.servers) - len(doomed)
        # ABCCC survives a rack loss connected: survivors all reach
        # each other, nobody is cut off.
        assert masked.largest_component_fraction() == 1.0
        assert masked.cut_off_servers() == (0, [])
        view = masked.sweep_view()
        assert len(view.server_indices) == masked.num_alive_servers()
        from repro.metrics.engine import sweep_graph_distance_stats

        stats = sweep_graph_distance_stats(view)
        assert stats.pairs > 0

    def test_zero_surviving_servers(self, abccc_medium):
        _, net = abccc_medium
        masked = self._masked(net, dead_servers=tuple(net.servers))
        assert masked.num_alive_servers() == 0
        assert list(masked.alive_server_indices()) == []
        assert masked.largest_component_fraction() == 0.0
        assert masked.connection_ratio(sample_pairs=10, seed=0) == 0.0
        assert masked.connection_ratio_indexed(sample_pairs=10, seed=0) == 0.0
        assert masked.cut_off_servers() == (0, [])
        view = masked.sweep_view()
        assert len(view.server_indices) == 0
        from repro.metrics.engine import sweep_graph_distance_stats

        stats = sweep_graph_distance_stats(view)
        assert stats.pairs == 0

    def test_mask_all_nodes(self, tiny_net):
        masked = self._masked(
            tiny_net,
            dead_servers=tuple(tiny_net.servers),
            dead_switches=tuple(tiny_net.switches),
        )
        assert masked.num_alive_servers() == 0
        assert all(int(label) == -1 for label in masked.component_labels())
        view = masked.sweep_view()
        assert len(view.server_indices) == 0
        # Every adjacency entry is gone: the CSR is all-empty rows.
        assert int(view.offsets[len(view.offsets) - 1]) == 0
        assert masked.largest_component_fraction() == 0.0
        assert masked.cut_off_servers() == (0, [])

    def test_single_survivor(self, tiny_net):
        survivor = tiny_net.servers[0]
        doomed = tuple(n for n in tiny_net.servers if n != survivor)
        masked = self._masked(tiny_net, dead_servers=doomed)
        assert masked.num_alive_servers() == 1
        # One alive server: no pairs to sample, ratio degenerates to 0.
        assert masked.connection_ratio_indexed(sample_pairs=10) == 0.0
        assert masked.largest_component_fraction() == 1.0
        assert masked.cut_off_servers() == (0, [])

    def test_cut_off_servers_reports_minority(self, tiny_net):
        # Kill the switch: in the tiny star net every server loses the
        # others; the majority component is a single server, the rest
        # count as cut off.
        masked = self._masked(tiny_net, dead_switches=tuple(tiny_net.switches))
        count, examples = masked.cut_off_servers()
        alive = masked.num_alive_servers()
        assert count == alive - 1
        assert len(examples) == min(count, 10)

    def test_indexed_ratio_partition_consistency(self, abccc_medium):
        _, net = abccc_medium
        scenario = random_failures(
            net, server_fraction=0.4, switch_fraction=0.4, seed=5
        ).scenario
        masked = MaskedGraph(compile_graph(net), scenario)
        ratio = masked.connection_ratio_indexed(sample_pairs=300, seed=1)
        lcf = masked.largest_component_fraction()
        assert 0.0 <= ratio <= 1.0
        if lcf == 1.0:
            assert ratio == 1.0


class TestSweepPathParity:
    @pytest.mark.parametrize("family", ["abccc_medium", "bcube_small"])
    def test_masked_and_legacy_sweeps_identical(self, family, request):
        _, net = request.getfixturevalue(family)
        kwargs = dict(
            levels=[0.0, 0.1, 0.25],
            trials=3,
            sample_pairs=50,
            seed=11,
            workers=1,
        )
        masked = degradation_sweep(net, FaultModel("server+switch"), **kwargs)
        legacy = degradation_sweep(
            net, FaultModel("server+switch"), use_masking=False, **kwargs
        )
        assert masked.outcomes == legacy.outcomes
        assert masked.points == legacy.points

    def test_unfailed_level_is_perfect(self, abccc_medium):
        _, net = abccc_medium
        curve = degradation_sweep(
            net,
            FaultModel("server"),
            levels=[0.0],
            trials=2,
            sample_pairs=40,
            seed=0,
            workers=1,
        )
        assert curve.point(0.0).mean_ratio == 1.0
        assert curve.point(0.0).mean_largest == 1.0
