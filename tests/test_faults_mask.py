"""Masked-CSR trial parity: identical results to the legacy copy path.

The acceptance bar for the masking fast path is *identity*, not
closeness: the same scenario must produce the same connection ratio and
largest-component fraction whether it is applied as a mask over the
compiled graph or via ``subgraph_without`` + a cold recompile.  The
scenarios here are randomised across ABCCC and two baseline families
and include dead links, which exercise the entry-mask path.
"""

import pytest

from repro.faults.mask import (
    MaskedGraph,
    masked_connection_ratio,
    masked_largest_component_fraction,
)
from repro.faults.plan import FaultModel, random_failures
from repro.faults.sweep import degradation_sweep
from repro.metrics.connectivity import (
    connection_ratio,
    largest_component_fraction,
)
from repro.topology.compiled import compile_graph

FAMILIES = ["abccc_medium", "abccc_s3", "bcube_small", "fattree_small"]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", range(4))
class TestMetricParity:
    def _scenario(self, net, seed):
        return random_failures(
            net,
            server_fraction=0.15,
            switch_fraction=0.10,
            link_fraction=0.05,
            seed=seed,
        ).scenario

    def test_connection_ratio_identical(self, family, seed, request):
        _, net = request.getfixturevalue(family)
        scenario = self._scenario(net, seed)
        assert masked_connection_ratio(
            net, scenario, sample_pairs=120, seed=seed
        ) == connection_ratio(net, scenario, sample_pairs=120, seed=seed)

    def test_largest_component_identical(self, family, seed, request):
        _, net = request.getfixturevalue(family)
        scenario = self._scenario(net, seed)
        assert masked_largest_component_fraction(
            net, scenario
        ) == largest_component_fraction(net, scenario)


class TestMaskedGraph:
    def test_alive_servers_match_subgraph_order(self, abccc_medium):
        _, net = abccc_medium
        scenario = random_failures(net, server_fraction=0.3, seed=2).scenario
        masked = MaskedGraph(compile_graph(net), scenario)
        sub = net.subgraph_without(dead_nodes=scenario.dead_servers)
        assert masked.alive_servers() == sub.servers
        assert masked.num_alive_servers() == sub.num_servers

    def test_connected_respects_dead_links(self, tiny_net):
        from repro.faults.plan import explicit_failures

        plan = explicit_failures(dead_links=(("a", "sw"),))
        masked = MaskedGraph(compile_graph(tiny_net), plan)
        assert not masked.connected("a", "b")
        assert masked.connected("b", "sw")

    def test_dead_endpoint_disconnects(self, tiny_net):
        from repro.faults.plan import explicit_failures

        plan = explicit_failures(dead_servers=("a",))
        masked = MaskedGraph(compile_graph(tiny_net), plan)
        assert not masked.connected("a", "b")
        assert masked.component_labels()[compile_graph(tiny_net).index["a"]] == -1

    def test_unknown_failures_ignored_like_legacy(self, tiny_net):
        from repro.faults.plan import explicit_failures

        plan = explicit_failures(
            dead_servers=("ghost",), dead_links=(("ghost", "sw"),)
        )
        masked = MaskedGraph(compile_graph(tiny_net), plan)
        assert masked.connection_ratio(sample_pairs=10, seed=0) == 1.0


class TestSweepPathParity:
    @pytest.mark.parametrize("family", ["abccc_medium", "bcube_small"])
    def test_masked_and_legacy_sweeps_identical(self, family, request):
        _, net = request.getfixturevalue(family)
        kwargs = dict(
            levels=[0.0, 0.1, 0.25],
            trials=3,
            sample_pairs=50,
            seed=11,
            workers=1,
        )
        masked = degradation_sweep(net, FaultModel("server+switch"), **kwargs)
        legacy = degradation_sweep(
            net, FaultModel("server+switch"), use_masking=False, **kwargs
        )
        assert masked.outcomes == legacy.outcomes
        assert masked.points == legacy.points

    def test_unfailed_level_is_perfect(self, abccc_medium):
        _, net = abccc_medium
        curve = degradation_sweep(
            net,
            FaultModel("server"),
            levels=[0.0],
            trials=2,
            sample_pairs=40,
            seed=0,
            workers=1,
        )
        assert curve.point(0.0).mean_ratio == 1.0
        assert curve.point(0.0).mean_largest == 1.0
