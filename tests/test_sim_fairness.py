"""Alpha-fair allocation: textbook cases and consistency with max-min."""

import pytest

from repro.routing.base import Route
from repro.sim.fairness import alpha_fair_allocation
from repro.sim.flow import max_min_allocation
from repro.sim.traffic import Flow
from repro.topology.graph import Network


def _two_link_line() -> Network:
    net = Network()
    for name in ("s0", "s1", "s2"):
        net.add_server(name, ports=4)
    net.add_link("s0", "s1", capacity=1.0)
    net.add_link("s1", "s2", capacity=1.0)
    return net


def _triangle_setup():
    """The classic NUM example: long flow A over both links, short flows
    B and C over one each."""
    net = _two_link_line()
    flows = [Flow("A", "s0", "s2"), Flow("B", "s0", "s1"), Flow("C", "s1", "s2")]
    routes = {
        "A": Route.of(["s0", "s1", "s2"]),
        "B": Route.of(["s0", "s1"]),
        "C": Route.of(["s1", "s2"]),
    }
    return net, flows, routes


class TestProportionalFairness:
    def test_textbook_triangle(self):
        """Proportional fairness gives A = 1/3 and B = C = 2/3."""
        net, flows, routes = _triangle_setup()
        allocation = alpha_fair_allocation(net, flows, routes, alpha=1.0)
        assert allocation.rates["A"] == pytest.approx(1 / 3, abs=0.02)
        assert allocation.rates["B"] == pytest.approx(2 / 3, abs=0.02)
        assert allocation.rates["C"] == pytest.approx(2 / 3, abs=0.02)

    def test_feasible_after_projection(self):
        net, flows, routes = _triangle_setup()
        allocation = alpha_fair_allocation(net, flows, routes, alpha=1.0)
        assert allocation.rates["A"] + allocation.rates["B"] <= 1.0 + 1e-6
        assert allocation.rates["A"] + allocation.rates["C"] <= 1.0 + 1e-6

    def test_single_flow_gets_capacity(self):
        net = _two_link_line()
        flows = [Flow("f", "s0", "s1")]
        routes = {"f": Route.of(["s0", "s1"])}
        allocation = alpha_fair_allocation(net, flows, routes, alpha=1.0)
        assert allocation.rates["f"] == pytest.approx(1.0, abs=0.02)


class TestAlphaSpectrum:
    def test_low_alpha_favours_short_flows(self):
        """As alpha decreases the long flow A is squeezed harder."""
        net, flows, routes = _triangle_setup()
        fair = alpha_fair_allocation(net, flows, routes, alpha=1.0)
        greedy = alpha_fair_allocation(net, flows, routes, alpha=0.5)
        assert greedy.rates["A"] < fair.rates["A"]
        assert greedy.aggregate_throughput >= fair.aggregate_throughput - 0.02

    def test_high_alpha_approaches_max_min(self):
        net, flows, routes = _triangle_setup()
        nearly_maxmin = alpha_fair_allocation(
            net, flows, routes, alpha=8.0, iterations=8000
        )
        maxmin = max_min_allocation(net, flows, routes)
        for flow_id in maxmin.rates:
            assert nearly_maxmin.rates[flow_id] == pytest.approx(
                maxmin.rates[flow_id], abs=0.07
            )

    def test_alpha_validation(self):
        net, flows, routes = _triangle_setup()
        with pytest.raises(ValueError, match="alpha"):
            alpha_fair_allocation(net, flows, routes, alpha=0)


class TestOnTopology:
    def test_abccc_permutation_feasible_and_positive(self, abccc_small):
        spec, net = abccc_small
        from repro.sim.flow import route_all
        from repro.sim.traffic import permutation_traffic
        from repro.topology.node import link_key

        flows = permutation_traffic(net.servers, seed=2)
        routes = route_all(net, flows, spec.route)
        allocation = alpha_fair_allocation(net, flows, routes, alpha=1.0)
        assert all(r > 0 for r in allocation.rates.values())
        loads = {}
        for flow in flows:
            for u, v in routes[flow.flow_id].edges():
                key = link_key(u, v)
                loads[key] = loads.get(key, 0.0) + allocation.rates[flow.flow_id]
        for key, load in loads.items():
            assert load <= net.link(*key).capacity + 1e-6

    def test_ordering_matches_maxmin_conclusions(self, abccc_small, bcube_small):
        """The F7 throughput ordering (BCube > ABCCC per server) holds
        under proportional fairness too — the conclusion is not a
        max-min artefact."""
        from repro.sim.flow import route_all
        from repro.sim.traffic import permutation_traffic

        results = {}
        for spec, net in (abccc_small, bcube_small):
            flows = permutation_traffic(net.servers, seed=3)
            routes = route_all(net, flows, spec.route)
            allocation = alpha_fair_allocation(net, flows, routes, alpha=1.0)
            results[spec.kind] = allocation.aggregate_throughput / net.num_servers
        assert results["bcube"] > results["abccc"]
