"""ABCCC builder structure tests: wiring rules, degeneration, spec surface."""

import pytest

from repro.core import AbcccSpec, build_abccc
from repro.core.address import (
    AbcccParams,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)
from repro.core.topology import iter_level_switches
from repro.topology.validate import LinkPolicy, validate_network


class TestWiring:
    def test_every_server_linked_to_its_crossbar_switch(self, abccc_medium):
        spec, net = abccc_medium
        for name in net.servers:
            addr = ServerAddress.parse(name)
            csw = CrossbarSwitchAddress(addr.digits).name
            assert net.has_link(name, csw)

    def test_level_switch_members_are_owners(self, abccc_s3):
        spec, net = abccc_s3
        params = spec.abccc
        for switch_name in net.switches_by_role("level"):
            lsw = LevelSwitchAddress.parse(switch_name)
            owner = params.owner_of(lsw.level)
            members = net.neighbors(switch_name)
            assert len(members) == params.n
            for member in members:
                addr = ServerAddress.parse(member)
                assert addr.index == owner
                # Members differ only in the switch's level digit.
                expected_rest = lsw.rest
                actual_rest = (
                    addr.digits[: lsw.level] + addr.digits[lsw.level + 1 :]
                )
                assert actual_rest == expected_rest

    def test_level_switch_count_enumeration(self):
        params = AbcccParams(3, 2, 2)
        switches = list(iter_level_switches(params))
        assert len(switches) == 3 * 9
        assert len({s.name for s in switches}) == len(switches)

    def test_server_port_usage_within_budget(self, abccc_s3):
        spec, net = abccc_s3
        params = spec.abccc
        for name in net.servers:
            addr = ServerAddress.parse(name)
            expected_degree = 1 + params.level_ports_used(addr.index)
            assert net.degree(name) == expected_degree
            assert expected_degree <= spec.s

    def test_server_centric_policy_holds(self, abccc_medium):
        spec, net = abccc_medium
        validate_network(net, LinkPolicy.server_centric())

    def test_meta_carries_params(self, abccc_medium):
        spec, net = abccc_medium
        assert net.meta["kind"] == "abccc"
        assert net.meta["params"] == spec.abccc


class TestDegenerateCases:
    def test_c1_has_no_crossbar_switches(self):
        net = build_abccc(AbcccParams(3, 1, 3))  # c = 1
        assert net.switches_by_role("crossbar") == []

    def test_c1_is_isomorphic_to_bcube(self):
        """Same link structure as BCube modulo the '/0' name suffix."""
        from repro.baselines.bcube import build_bcube

        abccc = build_abccc(AbcccParams(3, 1, 3))
        bcube = build_bcube(3, 1)

        def strip(name: str) -> str:
            return name[:-2] if name.endswith("/0") else name

        abccc_links = {tuple(sorted((strip(l.u), strip(l.v)))) for l in abccc.links()}
        bcube_links = {tuple(sorted((l.u, l.v))) for l in bcube.links()}
        assert abccc_links == bcube_links

    def test_k0_s2(self):
        """ABCCC(n, 0, 2): one level, singleton crossbars — a single star."""
        net = build_abccc(AbcccParams(4, 0, 2))
        assert net.num_servers == 4
        assert net.num_switches == 1
        assert net.num_links == 4


class TestSpecSurface:
    def test_params_dict(self):
        assert AbcccSpec(4, 2, 3).params() == {"n": 4, "k": 2, "s": 3}

    def test_accessors(self):
        spec = AbcccSpec(4, 2, 3)
        assert (spec.n, spec.k, spec.s) == (4, 2, 3)

    def test_switch_inventory_mixes_sizes_when_crossbars_outgrow_radix(self):
        spec = AbcccSpec(2, 3, 2)  # c = 4 > n = 2
        inventory = spec.switch_inventory()
        assert inventory[2] == 4 * 8  # level switches: (k+1) n^k
        assert inventory[4] == 16  # crossbar switches need 4 ports

    def test_switch_inventory_single_size_when_commodity(self):
        spec = AbcccSpec(4, 2, 2)  # c = 3 <= n = 4
        inventory = spec.switch_inventory()
        assert set(inventory) == {4}
        assert inventory[4] == spec.num_switches

    def test_route_delegates_to_digit_correction(self, abccc_small):
        spec, net = abccc_small
        route = spec.route(net, net.servers[0], net.servers[-1])
        route.validate(net)
        assert route.source == net.servers[0]
        assert route.destination == net.servers[-1]

    def test_invalid_parameters_rejected(self):
        from repro.core.address import AddressError

        with pytest.raises(AddressError):
            AbcccSpec(1, 1, 2)
