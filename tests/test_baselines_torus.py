"""3D torus (CamCube-style) baseline tests."""

import itertools
import random

import pytest

from repro.baselines.torus import (
    Torus3dSpec,
    build_torus3d,
    parse_server,
    server_name,
    torus_route,
)
from repro.metrics.bisection import partition_cut_width
from repro.metrics.distance import server_hop_stats
from repro.routing.base import RoutingError
from repro.routing.shortest import bfs_distances
from repro.topology.validate import LinkPolicy, validate_network


class TestStructure:
    @pytest.mark.parametrize("dims", [(2, 2, 2), (3, 3, 3), (4, 3, 2), (4, 4, 4), (5, 2, 3)])
    def test_counts(self, dims):
        spec = Torus3dSpec(*dims)
        net = spec.build()
        assert net.num_servers == spec.num_servers
        assert net.num_switches == 0
        assert net.num_links == spec.num_links
        validate_network(net, LinkPolicy.direct_server())

    def test_degree_is_port_count(self):
        spec = Torus3dSpec(4, 4, 4)
        net = spec.build()
        for server in net.servers:
            assert net.degree(server) == 6

    def test_dimension_of_two_has_single_links(self):
        spec = Torus3dSpec(2, 4, 4)
        net = spec.build()
        # ports: 1 (dim of 2) + 2 + 2 = 5
        assert spec.server_ports == 5
        for server in net.servers:
            assert net.degree(server) == 5

    def test_neighbours_differ_in_one_axis_by_one_mod(self):
        dims = (4, 3, 3)
        net = build_torus3d(*dims)
        for link in net.links():
            a, b = parse_server(link.u), parse_server(link.v)
            diffs = [
                (axis, (x - y) % dims[axis])
                for axis, (x, y) in enumerate(zip(a, b))
                if x != y
            ]
            assert len(diffs) == 1
            axis, delta = diffs[0]
            assert delta in (1, dims[axis] - 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Torus3dSpec(1, 3, 3)


class TestProperties:
    def test_diameter_formula(self):
        for dims in ((3, 3, 3), (4, 3, 2), (4, 4, 4)):
            spec = Torus3dSpec(*dims)
            measured = server_hop_stats(spec.build()).diameter
            assert measured == spec.diameter_server_hops

    def test_bisection_formula_achieved(self):
        spec = Torus3dSpec(4, 3, 3)
        net = spec.build()
        # Split across the x dimension: x in {0, 1} vs {2, 3}.
        side = {s for s in net.servers if parse_server(s)[0] < 2}
        width = partition_cut_width(net, side)
        assert width == spec.bisection_links == 2 * 36 / 4

    def test_no_even_dimension_has_no_closed_form(self):
        assert Torus3dSpec(3, 3, 3).bisection_links is None


class TestRouting:
    def test_routes_are_shortest(self):
        dims = (4, 3, 3)
        spec = Torus3dSpec(*dims)
        net = spec.build()
        rng = random.Random(1)
        for _ in range(40):
            src, dst = rng.sample(net.servers, 2)
            route = spec.route(net, src, dst)
            route.validate(net)
            assert route.link_hops == bfs_distances(net, src, targets={dst})[dst]

    def test_wrap_direction_chosen(self):
        # 0 -> 4 on a ring of 5 should wrap backwards (1 hop).
        route = torus_route((5, 2, 2), (0, 0, 0), (4, 0, 0))
        assert route.link_hops == 1

    def test_bad_coordinates(self):
        with pytest.raises(RoutingError):
            torus_route((3, 3, 3), (0, 0, 0), (3, 0, 0))

    def test_name_roundtrip(self):
        assert parse_server(server_name((1, 2, 0))) == (1, 2, 0)
