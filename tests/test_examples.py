"""Smoke tests: every shipped example runs cleanly end to end.

Examples are documentation that executes; these tests keep them honest.
Each runs in a subprocess (its own interpreter, like a user would) and
must exit 0 with the expected landmark strings in its output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

#: script -> strings its stdout must contain.
LANDMARKS = {
    "quickstart.py": ["ABCCC(n=4, k=2, s=3)", "permutation traffic", "CAPEX"],
    "expansion_planning.py": ["PURE ADDITION", "BCube", "fat-tree"],
    "failure_resilience.py": ["healthy", "severe outage", "stretch"],
    "tradeoff_explorer.py": ["Pareto frontier"],
    "mapreduce_shuffle.py": ["completion", "BCUBE"],
    "deployment_manifest.py": ["conformance: PASS", "sabotage drill", "makespan"],
    "capacity_planning.py": ["feasible configuration", "full report"],
}


def _run(script: str) -> str:
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_examples_directory_fully_covered():
    """Every example on disk has a smoke test (and vice versa)."""
    on_disk = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert on_disk == set(LANDMARKS)


@pytest.mark.parametrize("script", sorted(LANDMARKS))
def test_example_runs(script):
    out = _run(script)
    for landmark in LANDMARKS[script]:
        assert landmark in out, f"{script}: missing {landmark!r} in output"
