"""Shared fixtures: small built instances reused across test modules."""

from __future__ import annotations

import pytest

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.topology.graph import Network


@pytest.fixture(scope="session")
def abccc_small() -> tuple:
    """ABCCC(3, 1, 2): 2 levels, crossbars of 2 — the smallest instance
    with non-trivial intra-crossbar structure."""
    spec = AbcccSpec(3, 1, 2)
    return spec, spec.build()


@pytest.fixture(scope="session")
def abccc_medium() -> tuple:
    """ABCCC(3, 2, 2): crossbars of 3, the workhorse instance."""
    spec = AbcccSpec(3, 2, 2)
    return spec, spec.build()


@pytest.fixture(scope="session")
def abccc_s3() -> tuple:
    """ABCCC(3, 2, 3): multi-level owners (s - 1 = 2 levels per server)."""
    spec = AbcccSpec(3, 2, 3)
    return spec, spec.build()


@pytest.fixture(scope="session")
def bcube_small() -> tuple:
    spec = BcubeSpec(3, 1)
    return spec, spec.build()


@pytest.fixture(scope="session")
def fattree_small() -> tuple:
    spec = FatTreeSpec(4)
    return spec, spec.build()


@pytest.fixture()
def tiny_net() -> Network:
    """A hand-built 2-server / 1-switch network for unit tests."""
    net = Network("tiny")
    net.add_server("a", ports=2)
    net.add_server("b", ports=2)
    net.add_switch("sw", ports=4)
    net.add_link("a", "sw")
    net.add_link("b", "sw")
    return net
