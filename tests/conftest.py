"""Shared fixtures plus a per-test hang guard for the tier-1 suite.

No tier-1 test should run anywhere near :data:`SOFT_TIMEOUT_S`; the
guard exists so a regression that deadlocks (a stuck worker pool, an
unbounded resume loop) fails the test instead of hanging CI.  When
``pytest-timeout`` is installed (dev extra) it does the job with its
own option handling; otherwise a plain ``SIGALRM`` fallback covers
POSIX main-thread runs and stays out of the way everywhere else.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.baselines import BcubeSpec, FatTreeSpec
from repro.core import AbcccSpec
from repro.topology.graph import Network

SOFT_TIMEOUT_S = 300


def pytest_configure(config) -> None:
    if config.pluginmanager.hasplugin("timeout"):
        # pytest-timeout is present: give it a default without
        # overriding an explicit --timeout from the command line.
        if not getattr(config.option, "timeout", None):
            config.option.timeout = SOFT_TIMEOUT_S


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    usable = (
        not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {SOFT_TIMEOUT_S}s soft timeout (hang guard)"
        )

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    previous_timer = signal.setitimer(signal.ITIMER_REAL, SOFT_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *previous_timer)
        signal.signal(signal.SIGALRM, previous_handler)


@pytest.fixture(scope="session")
def abccc_small() -> tuple:
    """ABCCC(3, 1, 2): 2 levels, crossbars of 2 — the smallest instance
    with non-trivial intra-crossbar structure."""
    spec = AbcccSpec(3, 1, 2)
    return spec, spec.build()


@pytest.fixture(scope="session")
def abccc_medium() -> tuple:
    """ABCCC(3, 2, 2): crossbars of 3, the workhorse instance."""
    spec = AbcccSpec(3, 2, 2)
    return spec, spec.build()


@pytest.fixture(scope="session")
def abccc_s3() -> tuple:
    """ABCCC(3, 2, 3): multi-level owners (s - 1 = 2 levels per server)."""
    spec = AbcccSpec(3, 2, 3)
    return spec, spec.build()


@pytest.fixture(scope="session")
def bcube_small() -> tuple:
    spec = BcubeSpec(3, 1)
    return spec, spec.build()


@pytest.fixture(scope="session")
def fattree_small() -> tuple:
    spec = FatTreeSpec(4)
    return spec, spec.build()


@pytest.fixture()
def tiny_net() -> Network:
    """A hand-built 2-server / 1-switch network for unit tests."""
    net = Network("tiny")
    net.add_server("a", ports=2)
    net.add_server("b", ports=2)
    net.add_switch("sw", ports=4)
    net.add_link("a", "sw")
    net.add_link("b", "sw")
    return net
