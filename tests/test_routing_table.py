"""Forwarding-table construction and table-driven forwarding."""

import pytest

from repro.routing.base import Route, RoutingError
from repro.routing.shortest import shortest_distance
from repro.routing.table import ForwardingTable


class TestFromShortestPaths:
    def test_forwarding_reaches_all_destinations(self, abccc_small):
        _, net = abccc_small
        table = ForwardingTable.from_shortest_paths(net)
        servers = net.servers
        for dst in servers[:4]:
            for src in servers:
                if src == dst:
                    continue
                route = table.forward(net, src, dst)
                assert route.destination == dst
                assert route.link_hops == shortest_distance(net, src, dst)

    def test_restricted_destinations(self, tiny_net):
        table = ForwardingTable.from_shortest_paths(tiny_net, destinations=["b"])
        assert table.has_entry("a", "b")
        assert not table.has_entry("b", "a")

    def test_size_counts_entries(self, tiny_net):
        table = ForwardingTable.from_shortest_paths(tiny_net)
        # 2 destinations x 2 other nodes each (server + switch).
        assert table.size == 4


class TestFromRoutes:
    def test_installs_route_hops(self, tiny_net):
        route = Route.of(["a", "sw", "b"])
        table = ForwardingTable.from_routes([route])
        assert table.next_hop("a", "b") == "sw"
        assert table.next_hop("sw", "b") == "b"
        forwarded = table.forward(tiny_net, "a", "b")
        assert forwarded.nodes == route.nodes

    def test_missing_entry_raises(self, tiny_net):
        table = ForwardingTable()
        with pytest.raises(RoutingError, match="no forwarding entry"):
            table.forward(tiny_net, "a", "b")

    def test_entries_iteration(self):
        table = ForwardingTable()
        table.set_entry("a", "b", "w")
        assert list(table.entries()) == [("a", "b", "w")]


class TestForwardingFailures:
    def test_loop_detection(self, tiny_net):
        table = ForwardingTable()
        table.set_entry("a", "b", "sw")
        table.set_entry("sw", "b", "a")  # loops back
        with pytest.raises(RoutingError, match="loop"):
            table.forward(tiny_net, "a", "b")

    def test_stale_entry_over_dead_link(self, tiny_net):
        table = ForwardingTable.from_shortest_paths(tiny_net)
        tiny_net.remove_link("a", "sw")
        with pytest.raises(RoutingError, match="down"):
            table.forward(tiny_net, "a", "b")

    def test_custom_hop_budget(self, tiny_net):
        table = ForwardingTable.from_shortest_paths(tiny_net)
        with pytest.raises(RoutingError, match="loop"):
            table.forward(tiny_net, "a", "b", max_hops=1)
