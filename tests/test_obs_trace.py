"""Tracer core: no-op mode, nesting, schema, shards, warning events."""

import json
import os
import time

import pytest

from repro.obs import trace as obs_trace
from repro.obs.log import Heartbeat
from repro.obs.report import load_trace, validate_trace
from repro.obs.trace import (
    NULL_TRACER,
    SHARD_ENV,
    Tracer,
    get_tracer,
    merge_shards,
    set_tracer,
    trace_path_from_env,
)


@pytest.fixture(autouse=True)
def _restore_tracer(monkeypatch):
    """Every test leaves the module-global tracer as it found it."""
    monkeypatch.delenv(SHARD_ENV, raising=False)
    monkeypatch.setenv("REPRO_TRACE_MEM_INTERVAL", "0")  # no sampler thread
    previous = get_tracer()
    yield
    set_tracer(previous)


class TestNullTracer:
    def test_default_tracer_is_disabled(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_span_is_shared_noop_singleton(self):
        a = NULL_TRACER.span("x", foo=1)
        b = NULL_TRACER.span("y")
        assert a is b  # no per-call allocation on the disabled path
        with a as entered:
            entered.tag(bar=2)  # tag() is accepted and ignored

    def test_counters_and_events_are_noops(self):
        NULL_TRACER.counter("c", 3)
        NULL_TRACER.event("degraded-mode", "nope")
        assert NULL_TRACER.phase_seconds() == {}
        assert NULL_TRACER.counters() == {}
        NULL_TRACER.close()  # idempotent no-op

    def test_disabled_overhead_is_negligible(self):
        span = obs_trace.span  # the module-level proxy used by hot paths
        started = time.perf_counter()
        for _ in range(20_000):
            with span("hot"):
                pass
        elapsed = time.perf_counter() - started
        # Generous bound: 20k disabled spans in well under a second.
        assert elapsed < 1.0


class TestSpans:
    def test_nesting_and_parent_ids(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path=path) as tracer:
            with tracer.span("outer", kind="a"):
                with tracer.span("inner"):
                    pass
                with tracer.span("inner"):
                    pass
        events = load_trace(path)
        spans = {(-e["t"], e["name"]): e for e in events if e["ev"] == "span"}
        by_name = {}
        for event in events:
            if event["ev"] == "span":
                by_name.setdefault(event["name"], []).append(event)
        (outer,) = by_name["outer"]
        inner = by_name["inner"]
        assert outer["parent"] is None
        assert len(inner) == 2
        assert all(s["parent"] == outer["sid"] for s in inner)
        assert len({s["sid"] for s in inner} | {outer["sid"]}) == 3
        assert all(s["dur"] >= 0 for s in [outer] + inner)
        assert spans  # silence linters

    def test_sibling_spans_share_parent_not_each_other(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path=path) as tracer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = [e for e in load_trace(path) if e["ev"] == "span"]
        assert all(s["parent"] is None for s in spans)

    def test_tag_after_entry(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path=path) as tracer:
            with tracer.span("work", fixed=1) as span:
                span.tag(result=42)
        (span_event,) = [e for e in load_trace(path) if e["ev"] == "span"]
        assert span_event["tags"] == {"fixed": 1, "result": 42}

    def test_phase_seconds_aggregates_without_file(self):
        tracer = Tracer()  # metrics-only: nothing on disk
        with tracer.span("phase.x"):
            pass
        with tracer.span("phase.x"):
            pass
        with tracer.span("phase.y"):
            pass
        assert tracer.phase_counts() == {"phase.x": 2, "phase.y": 1}
        assert set(tracer.phase_seconds()) == {"phase.x", "phase.y"}
        assert all(v >= 0 for v in tracer.phase_seconds().values())
        assert tracer.path is None
        tracer.close()

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.counter("hits")
        tracer.counter("hits", 2)
        tracer.counter("seconds", 0.5)
        assert tracer.counters() == {"hits": 3, "seconds": 0.5}
        tracer.close()


class TestSchema:
    def test_jsonl_roundtrip_validates(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path, run_tags={"experiment": "T1", "quick": 1})
        with tracer.span("outer"):
            with tracer.span("inner", depth=1):
                tracer.counter("things", 2)
        tracer.event("degraded-mode", "pool died", context="unit", workers=2)
        tracer.sample_memory()
        tracer.close()
        events = load_trace(path)
        assert validate_trace(events) == []
        kinds = {e["ev"] for e in events}
        assert {"meta", "span", "counters", "warning"} <= kinds
        meta = events[0]
        assert meta["ev"] == "meta"
        assert meta["schema"] == obs_trace.SCHEMA_VERSION
        assert meta["tags"]["experiment"] == "T1"
        # Counters survive the write-read cycle exactly.
        (counters,) = [e for e in events if e["ev"] == "counters"]
        assert counters["values"] == {"things": 2}

    def test_validator_rejects_malformed_events(self):
        bad = [
            {"ev": "span", "t": 0.0, "pid": 1, "seq": 0},  # no name/dur/sid
            {"ev": "mystery", "t": 0.0, "pid": 1, "seq": 1},
            {"ev": "span", "t": 1.0, "pid": 1, "seq": 2, "name": "x",
             "sid": 7, "parent": 99, "dur": 0.1, "tags": {}},  # dangling parent
        ]
        problems = validate_trace(bad)
        assert any("name" in p for p in problems)
        assert any("unknown event type" in p for p in problems)
        assert any("parent 99" in p for p in problems)

    def test_loader_skips_junk_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"ev": "meta", "t": 0.0, "pid": 1, "seq": 0, "schema": 1, "tags": {}}\n'
            "not json at all\n"
            '{"ev": "rss", "t": 1.0, "pid": 1, "seq": 1, "rss_mb": 5.0, "peak_mb": 6.0}\n'
            '{"truncated": '
        )
        events = load_trace(str(path))
        assert [e["ev"] for e in events] == ["meta", "rss"]
        assert validate_trace(events) == []


class TestShards:
    @staticmethod
    def _write_shard(path, pid, t0):
        with open(path, "w", encoding="utf-8") as handle:
            for seq, t in enumerate((t0, t0 + 0.5)):
                handle.write(
                    json.dumps(
                        {
                            "ev": "span",
                            "t": t,
                            "dur": 0.1,
                            "name": f"worker-{pid}",
                            "sid": pid * 1_000_000 + seq + 1,
                            "parent": None,
                            "tags": {},
                            "pid": pid,
                            "seq": seq,
                        }
                    )
                    + "\n"
                )

    def test_merge_is_deterministic_and_sorted(self, tmp_path):
        main_line = json.dumps(
            {
                "ev": "meta",
                "t": 0.0,
                "schema": 1,
                "tags": {"run": "merge-test"},
                "pid": 7,
                "seq": 0,
            }
        )
        outputs = []
        for attempt in range(2):
            path = str(tmp_path / f"trace-{attempt}.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(main_line + "\n")
            # Shards as two fork-workers would leave them, written in
            # "wrong" (descending-pid) order to prove sorting.
            self._write_shard(f"{path}.shard-999", 999, t0=2.0)
            self._write_shard(f"{path}.shard-42", 42, t0=1.0)
            assert merge_shards(path) == 2
            assert not [
                name for name in os.listdir(tmp_path) if ".shard-" in name
            ], "shards must be consumed by the merge"
            events = load_trace(path)
            assert validate_trace(events) == []
            keys = [(e["t"], e["pid"], e["seq"]) for e in events]
            assert keys == sorted(keys)
            outputs.append(open(path, "rb").read())
        # Identical shard content => byte-identical merged trace.
        assert outputs[0] == outputs[1]

    def test_merge_without_shards_leaves_file_alone(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path)
        with tracer.span("solo"):
            pass
        tracer.close()
        before = open(path).read()
        assert merge_shards(path) == 0
        assert open(path).read() == before

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
    def test_fork_worker_redirects_to_shard(self, tmp_path):
        import multiprocessing

        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path)
        previous = set_tracer(tracer)
        try:
            ctx = multiprocessing.get_context("fork")
            proc = ctx.Process(target=_emit_child_span)
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == 0
        finally:
            set_tracer(previous)
        with tracer.span("parent-span"):
            pass
        tracer.close()
        events = load_trace(path)
        assert validate_trace(events) == []
        pids = {e["pid"] for e in events if e["ev"] == "span"}
        assert len(pids) == 2, "child span must arrive via its shard"
        child_spans = [
            e for e in events if e["ev"] == "span" and e["name"] == "child-work"
        ]
        assert len(child_spans) == 1
        assert child_spans[0]["parent"] is None  # no cross-process parents

    def test_maybe_init_worker_adopts_shard_from_env(self, tmp_path, monkeypatch):
        base = str(tmp_path / "main.jsonl")
        monkeypatch.setenv(SHARD_ENV, base)
        set_tracer(NULL_TRACER)
        obs_trace.maybe_init_worker()
        adopted = get_tracer()
        try:
            assert adopted.enabled
            assert adopted.path == f"{base}.shard-{os.getpid()}"
            with adopted.span("adopted-work"):
                pass
        finally:
            adopted.close()
        assert os.path.exists(f"{base}.shard-{os.getpid()}")

    def test_maybe_init_worker_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(SHARD_ENV, raising=False)
        set_tracer(NULL_TRACER)
        obs_trace.maybe_init_worker()
        assert get_tracer() is NULL_TRACER


def _emit_child_span():
    with obs_trace.span("child-work"):
        pass
    get_tracer().close()


class TestTraceContext:
    def test_mint_is_unique_and_header_safe(self):
        from repro.serve.protocol import normalize_trace_id

        ids = {obs_trace.mint_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(normalize_trace_id(i) == i for i in ids)

    def test_context_nests_and_restores(self):
        assert obs_trace.current_trace_id() is None
        with obs_trace.trace_context("outer-id"):
            assert obs_trace.current_trace_id() == "outer-id"
            with obs_trace.trace_context("inner-id"):
                assert obs_trace.current_trace_id() == "inner-id"
            assert obs_trace.current_trace_id() == "outer-id"
        assert obs_trace.current_trace_id() is None

    def test_none_context_unbinds(self):
        # Workers enter trace_context(request.get("trace")) unguarded;
        # a request without an id must not inherit a stale one.
        with obs_trace.trace_context("kept"):
            with obs_trace.trace_context(None):
                assert obs_trace.current_trace_id() is None
            assert obs_trace.current_trace_id() == "kept"

    def test_spans_are_tagged_with_the_active_trace(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path)
        previous = set_tracer(tracer)
        try:
            with obs_trace.trace_context("req-1"):
                with obs_trace.span("traced"):
                    pass
            with obs_trace.span("untraced"):
                pass
        finally:
            set_tracer(previous)
            tracer.close()
        spans = {e["name"]: e for e in load_trace(path) if e["ev"] == "span"}
        assert spans["traced"]["tags"]["trace"] == "req-1"
        assert "trace" not in spans["untraced"]["tags"]

    def test_record_span_emits_retroactive_span(self, tmp_path):
        import time as _time

        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path)
        previous = set_tracer(tracer)
        try:
            t0 = _time.perf_counter() - 0.05
            with obs_trace.trace_context("req-2"):
                obs_trace.record_span("serve.queue", t0, 0.05, op="route", slot=0)
        finally:
            set_tracer(previous)
            tracer.close()
        events = load_trace(path)
        assert validate_trace(events) == []
        (span,) = [e for e in events if e["ev"] == "span"]
        assert span["name"] == "serve.queue"
        assert span["dur"] == pytest.approx(0.05)
        assert span["tags"]["trace"] == "req-2"
        assert span["tags"]["slot"] == 0

    def test_record_span_is_noop_when_disabled(self):
        set_tracer(NULL_TRACER)
        obs_trace.record_span("nothing", 0.0, 1.0)  # must not raise


class TestTruncatedShards:
    """Satellite: a worker SIGKILLed mid-write must not corrupt the merge."""

    def test_truncated_final_line_yields_warning_event(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                '{"ev": "meta", "t": 0.0, "pid": 1, "seq": 0, '
                '"schema": 1, "tags": {}}\n'
            )
        shard = f"{path}.shard-4242"
        with open(shard, "w", encoding="utf-8") as handle:
            handle.write(
                '{"ev": "span", "t": 1.0, "dur": 0.1, "name": "work", '
                '"sid": 1, "parent": null, "tags": {}, "pid": 4242, "seq": 0}\n'
            )
            handle.write('{"ev": "span", "t": 2.0, "dur": 0.2, "na')  # killed here
        assert merge_shards(path) == 1
        events = load_trace(path)
        assert validate_trace(events) == []
        (warning,) = [e for e in events if e["ev"] == "warning"]
        assert warning["kind"] == "truncated-shard"
        assert warning["pid"] == 4242
        assert warning["data"]["skipped"] == 1
        # surviving events still merge in order
        assert [e["ev"] for e in events] == ["meta", "span", "warning"]

    def test_intact_shards_produce_no_warning(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                '{"ev": "meta", "t": 0.0, "pid": 1, "seq": 0, '
                '"schema": 1, "tags": {}}\n'
            )
        TestShards._write_shard(f"{path}.shard-7", 7, t0=1.0)
        assert merge_shards(path) == 1
        assert [e for e in load_trace(path) if e["ev"] == "warning"] == []

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork + SIGKILL")
    def test_sigkill_mid_write_is_survivable(self, tmp_path):
        """A real writer killed mid-line: merge skips the tail, warns."""
        import signal

        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path)
        previous = set_tracer(tracer)
        try:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            proc = ctx.Process(target=_write_then_die_mid_line)
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == -signal.SIGKILL
        finally:
            set_tracer(previous)
            tracer.close()  # close merges the child's shard, tail and all
        assert not [
            name for name in os.listdir(tmp_path) if ".shard-" in name
        ], "shard must be consumed by the close-time merge"
        events = load_trace(path)
        assert validate_trace(events) == []
        survivors = [
            e for e in events if e["ev"] == "span" and e["name"] == "whole-span"
        ]
        assert len(survivors) == 1
        (warning,) = [e for e in events if e["ev"] == "warning"]
        assert warning["kind"] == "truncated-shard"


def _write_then_die_mid_line():
    """Child body: one whole event, then SIGKILL self mid-record."""
    import signal

    with obs_trace.span("whole-span"):
        pass
    tracer = get_tracer()
    tracer._handle.flush()
    # Start a record but never finish the line, then die like an
    # OOM-killed worker would: no atexit, no flush, no close.
    tracer._handle.write('{"ev": "span", "t": 9.9, "dur": 0.1, "name"')
    tracer._handle.flush()
    os.kill(os.getpid(), signal.SIGKILL)


class TestEnvResolution:
    def test_trace_env_off(self, monkeypatch):
        monkeypatch.delenv(obs_trace.TRACE_ENV, raising=False)
        assert trace_path_from_env("default.jsonl") is None
        monkeypatch.setenv(obs_trace.TRACE_ENV, "0")
        assert trace_path_from_env("default.jsonl") is None

    def test_trace_env_truthy_uses_default(self, monkeypatch):
        monkeypatch.setenv(obs_trace.TRACE_ENV, "1")
        assert trace_path_from_env("default.jsonl") == "default.jsonl"
        monkeypatch.setenv(obs_trace.TRACE_ENV, "true")
        assert trace_path_from_env("default.jsonl") == "default.jsonl"

    def test_trace_env_path_wins(self, monkeypatch):
        monkeypatch.setenv(obs_trace.TRACE_ENV, "/tmp/custom.jsonl")
        assert trace_path_from_env("default.jsonl") == "/tmp/custom.jsonl"


class TestDegradedModeEvents:
    """Satellite: pool degradation must be visible in the trace."""

    def test_degraded_pool_emits_warning_events(self, tmp_path, monkeypatch):
        from repro.metrics import engine

        class AlwaysBroken:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork for you")

        monkeypatch.setattr(engine, "ProcessPoolExecutor", AlwaysBroken)
        monkeypatch.setattr(engine, "POOL_RETRY_BACKOFF_S", 0.0)
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path)
        previous = set_tracer(tracer)
        try:
            with pytest.warns(engine.DegradedModeWarning):
                result = engine.map_with_pool_recovery(
                    _times_three,
                    [1, 2],
                    workers=2,
                    sequential=lambda tasks: [t * 3 for t in tasks],
                    context="obs unit test",
                )
        finally:
            set_tracer(previous)
            tracer.close()
        assert result == [3, 6]
        events = load_trace(path)
        assert validate_trace(events) == []
        warnings = [e for e in events if e["ev"] == "warning"]
        kinds = [w["kind"] for w in warnings]
        assert kinds == ["pool-retry", "degraded-mode"]
        degraded = warnings[-1]
        assert degraded["data"]["context"] == "obs unit test"
        assert degraded["data"]["workers"] == 2
        assert "OSError" in degraded["data"]["error"]
        # The pool span records the degradation and the counters count it.
        (pool_span,) = [
            e for e in events if e["ev"] == "span" and e["name"] == "pool"
        ]
        assert pool_span["tags"]["degraded"] is True
        (counters,) = [e for e in events if e["ev"] == "counters"]
        assert counters["values"]["pool.retries"] == 1
        assert counters["values"]["pool.degraded"] == 1

    def test_healthy_pool_emits_no_warnings(self, tmp_path):
        from repro.metrics import engine

        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path=path)
        previous = set_tracer(tracer)
        try:
            result = engine.map_with_pool_recovery(
                _times_three,
                [1, 2, 3],
                workers=2,
                sequential=lambda tasks: [t * 3 for t in tasks],
                context="healthy",
            )
        finally:
            set_tracer(previous)
            tracer.close()
        assert result == [3, 6, 9]
        events = load_trace(path)
        assert [e for e in events if e["ev"] == "warning"] == []


def _times_three(x):
    return x * 3


class TestHeartbeat:
    def test_heartbeat_fires_until_stopped(self):
        beats = []
        hb = Heartbeat(0.02, lambda: beats.append(1))
        time.sleep(0.15)
        hb.stop()
        count = len(beats)
        assert count >= 2
        time.sleep(0.06)
        assert len(beats) == count  # stopped means stopped

    def test_zero_interval_is_dormant(self):
        beats = []
        hb = Heartbeat(0.0, lambda: beats.append(1))
        time.sleep(0.05)
        hb.stop()
        assert beats == []

    def test_raising_callback_kills_heartbeat_not_test(self):
        def boom():
            raise RuntimeError("observability must never break the run")

        hb = Heartbeat(0.01, boom)
        time.sleep(0.05)
        hb.stop()
