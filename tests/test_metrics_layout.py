"""Physical layout and cabling model tests."""

import pytest

from repro.core import AbcccSpec
from repro.baselines import FatTreeSpec
from repro.metrics.layout import CablePlan, LayoutConfig, assign_racks, cable_plan
from repro.topology.graph import Network


class TestLayoutConfig:
    def test_rack_positions_row_major(self):
        config = LayoutConfig(racks_per_row=3, rack_pitch=1.0, row_pitch=5.0)
        assert config.rack_position(0) == (0.0, 0.0)
        assert config.rack_position(2) == (2.0, 0.0)
        assert config.rack_position(3) == (0.0, 5.0)

    def test_distances_manhattan(self):
        config = LayoutConfig(racks_per_row=3, rack_pitch=1.0, row_pitch=5.0)
        assert config.rack_distance(0, 4) == pytest.approx(1.0 + 5.0)

    def test_cable_length_intra_vs_inter(self):
        config = LayoutConfig(intra_rack_length=2.0, tray_overhead=4.0)
        assert config.cable_length(3, 3) == 2.0
        assert config.cable_length(0, 1) == pytest.approx(4.0 + config.rack_pitch)

    def test_price(self):
        config = LayoutConfig(price_per_metre=2.0, connector_price=3.0)
        assert config.cable_price(10.0) == pytest.approx(23.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LayoutConfig(rack_capacity=0)


class TestRackAssignment:
    def test_servers_fill_in_order(self):
        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        racks = assign_racks(net, LayoutConfig(rack_capacity=6))
        servers = net.servers
        assert racks[servers[0]] == 0
        assert racks[servers[5]] == 0
        assert racks[servers[6]] == 1

    def test_crossbars_stay_rack_local(self):
        """Address-order placement keeps whole crossbars in one rack when
        the capacity is a multiple of the crossbar size."""
        spec = AbcccSpec(3, 2, 2)  # crossbars of 3
        net = spec.build()
        racks = assign_racks(net, LayoutConfig(rack_capacity=9))
        from repro.core.address import ServerAddress

        by_crossbar = {}
        for server in net.servers:
            digits = ServerAddress.parse(server).digits
            by_crossbar.setdefault(digits, set()).add(racks[server])
        assert all(len(r) == 1 for r in by_crossbar.values())

    def test_every_switch_placed(self):
        spec = FatTreeSpec(4)
        net = spec.build()
        racks = assign_racks(net, LayoutConfig(rack_capacity=8))
        assert set(racks) == set(net.node_names())

    def test_disconnected_switch_rejected(self):
        net = Network()
        net.add_server("a", ports=1)
        net.add_switch("island", ports=2)
        with pytest.raises(ValueError, match="disconnected"):
            assign_racks(net, LayoutConfig())


class TestCablePlan:
    def test_counts_every_link(self):
        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        plan = cable_plan(net, LayoutConfig(rack_capacity=6))
        assert plan.num_cables == net.num_links
        assert plan.total_length == pytest.approx(sum(plan.lengths))
        assert 0 <= plan.intra_rack_fraction <= 1

    def test_single_rack_all_intra(self):
        spec = AbcccSpec(2, 1, 2)  # 8 servers
        net = spec.build()
        plan = cable_plan(net, LayoutConfig(rack_capacity=64))
        assert plan.racks_used == 1
        assert plan.intra_rack_fraction == 1.0
        assert plan.max_length == LayoutConfig().intra_rack_length

    def test_price_consistency(self):
        spec = AbcccSpec(3, 1, 2)
        net = spec.build()
        config = LayoutConfig(rack_capacity=6)
        plan = cable_plan(net, config)
        manual = sum(config.cable_price(length) for length in plan.lengths)
        assert plan.total_price(config) == pytest.approx(manual)

    def test_smaller_racks_mean_longer_cables(self):
        spec = AbcccSpec(3, 2, 2)
        net = spec.build()
        tight = cable_plan(net, LayoutConfig(rack_capacity=9))
        roomy = cable_plan(net, LayoutConfig(rack_capacity=81))
        assert tight.total_length > roomy.total_length
