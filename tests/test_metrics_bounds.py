"""Throughput-bound tests: ceilings hold for every measured allocation."""

import pytest

from repro.baselines import BcubeSpec, FatTreeSpec, TreeSpec
from repro.core import AbcccSpec
from repro.metrics.bounds import all_to_all_bounds, per_server_ceiling
from repro.sim.flow import max_min_allocation, route_all
from repro.sim.traffic import all_to_all_traffic, permutation_traffic


class TestBoundValues:
    def test_abccc_bisection_binds(self):
        spec = AbcccSpec(4, 2, 2)  # bisection/server = 1/6 < degree 2
        bounds = all_to_all_bounds(spec)
        assert bounds.bisection_bound == 2 * 32
        assert bounds.nic_bound == 192 * 2
        assert bounds.bottleneck == "bisection"
        assert bounds.binding == 64

    def test_bcube_nic_vs_bisection(self):
        spec = BcubeSpec(4, 2)  # B = N/2 -> 2B = N; NIC = 3N
        bounds = all_to_all_bounds(spec)
        assert bounds.bottleneck == "bisection"
        assert bounds.binding == spec.num_servers

    def test_tree_is_bisection_starved(self):
        spec = TreeSpec(16, 15, oversub=3)
        assert all_to_all_bounds(spec).bottleneck == "bisection"
        # Oversubscription caps the per-server ceiling at uplinks/downlinks
        # (1/3 here), far below the fat-tree's full-bisection 1.0.
        assert per_server_ceiling(spec) == pytest.approx(1 / 3)
        assert per_server_ceiling(spec) < per_server_ceiling(FatTreeSpec(8))

    def test_unknown_bisection_falls_back_to_nic(self):
        spec = AbcccSpec(3, 1, 2)  # odd n: no closed-form bisection
        bounds = all_to_all_bounds(spec)
        assert bounds.bisection_bound is None
        assert bounds.bottleneck == "nic"
        assert bounds.binding == bounds.nic_bound

    def test_wired_degree_refinement(self):
        """With a built net, spare ports on the last crossbar server are
        excluded from the NIC bound."""
        spec = AbcccSpec(4, 2, 3)  # last server owns 1 level: 1 spare port
        net = spec.build()
        provisioned = all_to_all_bounds(spec).nic_bound
        wired = all_to_all_bounds(spec, net).nic_bound
        assert wired < provisioned


class TestMeasuredRespectsBounds:
    @pytest.mark.parametrize(
        "spec",
        [AbcccSpec(3, 1, 2), AbcccSpec(2, 2, 2), BcubeSpec(3, 1), FatTreeSpec(4)],
        ids=lambda s: s.label,
    )
    def test_all_to_all_under_ceiling(self, spec):
        net = spec.build()
        flows = all_to_all_traffic(net.servers, max_flows=400, seed=1)
        routes = route_all(net, flows, spec.route)
        allocation = max_min_allocation(net, flows, routes)
        bounds = all_to_all_bounds(spec, net)
        assert allocation.aggregate_throughput <= bounds.nic_bound + 1e-6
        # The bisection bound holds for *uniform* traffic in expectation;
        # sampled all-to-all stays within a small tolerance of it.
        if bounds.bisection_bound is not None:
            assert allocation.aggregate_throughput <= 1.2 * bounds.bisection_bound

    def test_permutation_under_nic_ceiling(self, abccc_small):
        spec, net = abccc_small
        flows = permutation_traffic(net.servers, seed=2)
        routes = route_all(net, flows, spec.route)
        allocation = max_min_allocation(net, flows, routes)
        assert allocation.aggregate_throughput <= all_to_all_bounds(spec, net).nic_bound
