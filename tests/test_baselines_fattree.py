"""Fat-tree baseline: Clos wiring, counts, diameter, full bisection."""

import pytest

from repro.baselines.fattree import FatTreeSpec, build_fattree, fattree_embed
from repro.metrics.bisection import partition_cut_width, pod_split_fattree
from repro.metrics.distance import link_hop_stats
from repro.routing.shortest import shortest_distance
from repro.topology.validate import LinkPolicy, validate_network


class TestStructure:
    @pytest.mark.parametrize("p", [2, 4, 6, 8])
    def test_counts(self, p):
        spec = FatTreeSpec(p)
        net = spec.build()
        assert net.num_servers == spec.num_servers == p**3 // 4
        assert net.num_switches == spec.num_switches == 5 * p**2 // 4
        assert net.num_links == spec.num_links == 3 * p**3 // 4
        validate_network(net, LinkPolicy.switch_centric())

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError, match="even"):
            FatTreeSpec(5)
        with pytest.raises(ValueError):
            build_fattree(3)

    def test_all_switches_have_full_radix_degree(self):
        p = 4
        net = build_fattree(p)
        for switch in net.switches:
            assert net.degree(switch) == p

    def test_single_port_servers(self):
        net = build_fattree(4)
        for server in net.servers:
            assert net.degree(server) == 1

    def test_layer_counts(self):
        p = 6
        net = build_fattree(p)
        assert len(net.switches_by_role("core")) == (p // 2) ** 2
        assert len(net.switches_by_role("edge")) == p * p // 2
        assert len(net.switches_by_role("aggregation")) == p * p // 2


class TestDistances:
    def test_diameter_is_six(self):
        spec = FatTreeSpec(4)
        assert link_hop_stats(spec.build()).diameter == 6

    def test_same_rack_distance(self):
        net = build_fattree(4)
        assert shortest_distance(net, "h0.0.0", "h0.0.1") == 2

    def test_same_pod_distance(self):
        net = build_fattree(4)
        assert shortest_distance(net, "h0.0.0", "h0.1.0") == 4

    def test_inter_pod_distance(self):
        net = build_fattree(4)
        assert shortest_distance(net, "h0.0.0", "h3.1.1") == 6


class TestBisection:
    @pytest.mark.parametrize("p", [4, 6])
    def test_pod_cut_achieves_full_bisection(self, p):
        spec = FatTreeSpec(p)
        net = spec.build()
        width = partition_cut_width(net, pod_split_fattree(net))
        assert width == spec.bisection_links == spec.num_servers / 2


class TestEmbed:
    def test_identity_into_bigger_fabric(self):
        old = build_fattree(4)
        new = build_fattree(6)
        for name in old.node_names():
            assert fattree_embed(name) == name
            assert name in new
