"""One-to-all and one-to-many tree tests."""

import random

import pytest

from repro.core.address import AbcccParams, ServerAddress
from repro.core.broadcast import broadcast_tree, multicast_tree
from repro.core.topology import build_abccc
from repro.core import properties
from repro.routing.base import RoutingError

CASES = [
    AbcccParams(2, 1, 2),
    AbcccParams(3, 1, 2),
    AbcccParams(3, 2, 2),
    AbcccParams(3, 2, 3),
    AbcccParams(3, 1, 3),  # c = 1
]


@pytest.mark.parametrize("params", CASES, ids=str)
class TestBroadcastTree:
    def _tree(self, params, source_rank=0):
        source = ServerAddress.from_rank(params, source_rank)
        return source, broadcast_tree(params, source)

    def test_spans_all_servers(self, params):
        net = build_abccc(params)
        _, tree = self._tree(params)
        assert set(tree.servers) == set(net.servers)

    def test_uses_only_real_links(self, params):
        net = build_abccc(params)
        _, tree = self._tree(params)
        tree.validate(net)

    def test_is_a_tree(self, params):
        source, tree = self._tree(params)
        roots = [s for s, p in tree.parent.items() if p is None]
        assert roots == [source.name]
        # depth() raises on cycles; visiting every node proves acyclicity.
        for server in tree.servers:
            tree.depth(server)

    def test_depth_at_most_diameter(self, params):
        _, tree = self._tree(params)
        assert tree.max_depth <= properties.diameter_server_hops(params)

    def test_stress_formula(self, params):
        """Unicast link stress = max(c - 1, n - 1): the widest fan-out
        sharing one first link."""
        _, tree = self._tree(params)
        expected = max(params.crossbar_size - 1, params.n - 1)
        assert tree.link_stress() == expected

    def test_non_default_source(self, params):
        net = build_abccc(params)
        last = ServerAddress.parse(net.servers[-1])
        tree = broadcast_tree(params, last)
        assert set(tree.servers) == set(net.servers)
        tree.validate(net)


class TestOnePortSchedule:
    def _brute_force(self, tree, node):
        """Optimal completion over ALL child orderings (exponential)."""
        import itertools

        children = tree.children()[node]
        if not children:
            return 0
        sub = [self._brute_force(tree, c) for c in children]
        best = None
        for perm in itertools.permutations(sub):
            finish = max(i + 1 + t for i, t in enumerate(perm))
            best = finish if best is None or finish < best else best
        return best

    @pytest.mark.parametrize(
        "params", [AbcccParams(2, 1, 2), AbcccParams(3, 1, 2), AbcccParams(2, 2, 2)], ids=str
    )
    def test_matches_brute_force(self, params):
        source = ServerAddress.from_rank(params, 0)
        tree = broadcast_tree(params, source)
        assert tree.one_port_rounds() == self._brute_force(tree, tree.source)

    def test_lower_bound_log2(self):
        """One-port broadcast needs >= ceil(log2(N)) rounds."""
        import math

        params = AbcccParams(3, 2, 2)
        tree = broadcast_tree(params, ServerAddress.from_rank(params, 0))
        n_servers = len(tree.servers)
        assert tree.one_port_rounds() >= math.ceil(math.log2(n_servers))

    def test_at_least_depth(self):
        params = AbcccParams(3, 2, 3)
        tree = broadcast_tree(params, ServerAddress.from_rank(params, 0))
        assert tree.one_port_rounds() >= tree.max_depth

    def test_single_node_tree(self):
        params = AbcccParams(2, 1, 3)  # c = 1
        source = ServerAddress.from_rank(params, 0)
        from repro.core.broadcast import multicast_tree

        tree = multicast_tree(params, source, [])
        assert tree.one_port_rounds() == 0

    def test_children_map_consistent(self):
        params = AbcccParams(3, 1, 2)
        tree = broadcast_tree(params, ServerAddress.from_rank(params, 0))
        children = tree.children()
        assert sum(len(c) for c in children.values()) == len(tree.servers) - 1
        for parent, kids in children.items():
            for child in kids:
                assert tree.parent[child] == parent


class TestPaths:
    def test_path_to_follows_tree(self):
        params = AbcccParams(3, 2, 2)
        net = build_abccc(params)
        source = ServerAddress.parse(net.servers[0])
        tree = broadcast_tree(params, source)
        for server in random.Random(0).sample(net.servers, 10):
            route = tree.path_to(server)
            route.validate(net)
            assert route.source == source.name
            assert route.destination == server
            assert route.server_hops(net) == tree.depth(server)


class TestMulticast:
    def test_prunes_to_group(self):
        params = AbcccParams(3, 2, 2)
        net = build_abccc(params)
        source = ServerAddress.parse(net.servers[0])
        rng = random.Random(1)
        group = [ServerAddress.parse(n) for n in rng.sample(net.servers[1:], 5)]
        tree = multicast_tree(params, source, group)
        tree.validate(net)
        for member in group:
            assert member.name in tree.parent
        # Pruned tree is (much) smaller than the full broadcast tree.
        assert len(tree.servers) < net.num_servers

    def test_multicast_to_all_equals_broadcast(self):
        params = AbcccParams(2, 1, 2)
        net = build_abccc(params)
        source = ServerAddress.parse(net.servers[0])
        group = [ServerAddress.parse(n) for n in net.servers[1:]]
        pruned = multicast_tree(params, source, group)
        full = broadcast_tree(params, source)
        assert pruned.parent == full.parent

    def test_empty_group(self):
        params = AbcccParams(2, 1, 2)
        source = ServerAddress((0, 0), 0)
        tree = multicast_tree(params, source, [])
        assert tree.servers == [source.name]

    def test_leaf_monotonicity(self):
        """Every leaf of a multicast tree is a requested destination (or
        the source itself) — no dangling branches survive pruning."""
        params = AbcccParams(3, 2, 2)
        net = build_abccc(params)
        source = ServerAddress.parse(net.servers[0])
        group = [ServerAddress.parse(n) for n in net.servers[10:14]]
        tree = multicast_tree(params, source, group)
        parents = set(tree.parent.values()) - {None}
        leaves = [s for s in tree.servers if s not in parents]
        wanted = {m.name for m in group} | {source.name}
        assert set(leaves) <= wanted
