"""Failure injection and resilience metrics."""

import pytest

from repro.metrics.connectivity import (
    FailureScenario,
    apply_failures,
    connection_ratio,
    draw_failures,
    largest_component_fraction,
    sample_server_pairs,
    server_pair_connectivity,
)


class TestDrawFailures:
    def test_fraction_counts(self, abccc_small):
        _, net = abccc_small
        scenario = draw_failures(net, server_fraction=0.5, seed=1)
        assert len(scenario.dead_servers) == round(0.5 * net.num_servers)
        assert scenario.dead_switches == ()
        assert scenario.dead_links == ()

    def test_seed_determinism(self, abccc_small):
        _, net = abccc_small
        a = draw_failures(net, server_fraction=0.3, switch_fraction=0.2, seed=7)
        b = draw_failures(net, server_fraction=0.3, switch_fraction=0.2, seed=7)
        assert a == b

    def test_different_seeds_differ(self, abccc_small):
        _, net = abccc_small
        a = draw_failures(net, server_fraction=0.3, seed=7)
        b = draw_failures(net, server_fraction=0.3, seed=8)
        assert a != b

    def test_fraction_validation(self, abccc_small):
        _, net = abccc_small
        with pytest.raises(ValueError, match="fraction"):
            draw_failures(net, server_fraction=1.5)

    def test_empty_scenario(self, abccc_small):
        _, net = abccc_small
        scenario = draw_failures(net)
        assert scenario.is_empty


class TestRackFailures:
    def test_whole_racks_die_together(self, abccc_medium):
        from repro.metrics.connectivity import draw_rack_failures
        from repro.metrics.layout import LayoutConfig, assign_racks

        _, net = abccc_medium
        scenario = draw_rack_failures(net, 2, rack_capacity=9, seed=1)
        racks = assign_racks(net, LayoutConfig(rack_capacity=9))
        dead_racks = {racks[name] for name in scenario.dead_servers}
        assert len(dead_racks) == 2
        # Every server of a dead rack is dead — no partial racks.
        for name, rack in racks.items():
            if rack in dead_racks and net.node(name).is_server:
                assert name in scenario.dead_servers

    def test_switches_in_dead_racks_die(self, abccc_medium):
        from repro.metrics.connectivity import draw_rack_failures

        _, net = abccc_medium
        scenario = draw_rack_failures(net, 1, rack_capacity=9, seed=2)
        assert scenario.dead_switches  # crossbar switches live in racks

    def test_zero_racks_is_empty(self, abccc_small):
        from repro.metrics.connectivity import draw_rack_failures

        _, net = abccc_small
        assert draw_rack_failures(net, 0, rack_capacity=6).is_empty

    def test_bounds_validated(self, abccc_small):
        from repro.metrics.connectivity import draw_rack_failures

        _, net = abccc_small
        with pytest.raises(ValueError, match="num_racks"):
            draw_rack_failures(net, 99, rack_capacity=6)

    def test_seed_determinism(self, abccc_small):
        from repro.metrics.connectivity import draw_rack_failures

        _, net = abccc_small
        a = draw_rack_failures(net, 1, rack_capacity=6, seed=5)
        b = draw_rack_failures(net, 1, rack_capacity=6, seed=5)
        assert a == b


class TestApplyFailures:
    def test_removes_components(self, abccc_small):
        _, net = abccc_small
        scenario = draw_failures(net, server_fraction=0.25, link_fraction=0.1, seed=3)
        alive = apply_failures(net, scenario)
        assert alive.num_servers == net.num_servers - len(scenario.dead_servers)
        for name in scenario.dead_servers:
            assert name not in alive
        assert net.num_servers > alive.num_servers  # original untouched? no:
        # original network must be untouched
        assert all(name in net for name in scenario.dead_servers)


class TestConnectionRatio:
    def test_no_failures_is_fully_connected(self, abccc_small):
        _, net = abccc_small
        scenario = FailureScenario((), (), ())
        assert connection_ratio(net, scenario, sample_pairs=50) == 1.0

    def test_degrades_with_failures(self, abccc_medium):
        _, net = abccc_medium
        light = draw_failures(net, switch_fraction=0.05, seed=2)
        heavy = draw_failures(net, switch_fraction=0.5, seed=2)
        ratio_light = connection_ratio(net, light, sample_pairs=150, seed=0)
        ratio_heavy = connection_ratio(net, heavy, sample_pairs=150, seed=0)
        assert ratio_heavy <= ratio_light <= 1.0

    def test_total_blackout(self, abccc_small):
        _, net = abccc_small
        scenario = draw_failures(net, switch_fraction=1.0, seed=1)
        assert connection_ratio(net, scenario, sample_pairs=30) == 0.0


class TestLargestComponent:
    def test_intact_network(self, abccc_small):
        _, net = abccc_small
        scenario = FailureScenario((), (), ())
        assert largest_component_fraction(net, scenario) == 1.0

    def test_all_servers_dead(self, abccc_small):
        _, net = abccc_small
        scenario = FailureScenario(tuple(net.servers), (), ())
        assert largest_component_fraction(net, scenario) == 0.0


class TestPairUtilities:
    def test_sample_pairs_distinct(self, abccc_small):
        _, net = abccc_small
        pairs = sample_server_pairs(net, 25, seed=1)
        assert len(pairs) == 25
        assert len(set(pairs)) == 25
        for src, dst in pairs:
            assert src != dst

    def test_pair_connectivity_values(self, abccc_small):
        spec, net = abccc_small
        pairs = sample_server_pairs(net, 5, seed=2)
        for node_conn, edge_conn in server_pair_connectivity(net, pairs):
            assert 1 <= node_conn <= spec.s
            assert node_conn <= edge_conn <= spec.s
