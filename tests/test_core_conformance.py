"""ABCCC conformance checking: the builder passes, corruptions are caught."""

import pytest

from repro.core import AbcccSpec
from repro.core.address import AbcccParams
from repro.core.conformance import check_abccc, conformance_problems, infer_params
from repro.core.topology import build_abccc
from repro.topology.serialize import from_json_dict, to_json_dict

GRID = [AbcccParams(2, 1, 2), AbcccParams(3, 1, 2), AbcccParams(3, 2, 2), AbcccParams(3, 2, 3), AbcccParams(3, 1, 3)]


class TestBuilderConforms:
    @pytest.mark.parametrize("params", GRID, ids=str)
    def test_canonical_build_passes(self, params):
        net = build_abccc(params)
        assert conformance_problems(net, params) == []
        check_abccc(net, params)  # no raise

    def test_serialised_build_still_conforms(self):
        params = AbcccParams(3, 1, 2)
        loaded = from_json_dict(to_json_dict(build_abccc(params)))
        check_abccc(loaded, params)


class TestCorruptionsCaught:
    def _net(self):
        params = AbcccParams(3, 1, 2)
        return params, build_abccc(params)

    def test_missing_link(self):
        params, net = self._net()
        link = next(iter(net.links()))
        net.remove_link(link.u, link.v)
        problems = conformance_problems(net, params)
        assert any("missing link" in p for p in problems)

    def test_extra_link(self):
        params, net = self._net()
        # Free one port on two servers, then wire them directly — a
        # server-server link is never legal in ABCCC.
        a, b = "s0.0/0", "s2.2/1"
        net.remove_link(a, next(iter(net.neighbors(a))))
        net.remove_link(b, next(iter(net.neighbors(b))))
        net.add_link(a, b)
        problems = conformance_problems(net, params)
        assert any("unexpected link" in p for p in problems)

    def test_missing_server(self):
        params, net = self._net()
        net.remove_node(net.servers[0])
        problems = conformance_problems(net, params)
        assert any("missing server" in p for p in problems)

    def test_foreign_node(self):
        params, net = self._net()
        net.add_server("intruder", ports=2)
        net.add_link("intruder", net.switches[0])
        problems = conformance_problems(net, params)
        assert any("unexpected server" in p for p in problems)

    def test_miswired_level_switch(self):
        """Re-plug one level link into the wrong in-crossbar server."""
        params, net = self._net()
        switch = net.switches_by_role("level")[0]
        member = next(iter(net.neighbors(switch)))
        from repro.core.address import ServerAddress

        addr = ServerAddress.parse(member)
        wrong = ServerAddress(addr.digits, (addr.index + 1) % params.crossbar_size)
        net.remove_link(switch, member)
        # Free a port on the wrong server (its own level link) so the
        # miswired cable physically fits.
        other = next(n for n in net.neighbors(wrong.name) if n.startswith("l"))
        net.remove_link(wrong.name, other)
        net.add_link(switch, wrong.name)
        problems = conformance_problems(net, params)
        assert any("missing link" in p for p in problems)
        assert any("unexpected link" in p for p in problems)

    def test_wrong_parameters_rejected(self):
        params, net = self._net()
        with pytest.raises(ValueError, match="not ABCCC"):
            check_abccc(net, AbcccParams(3, 2, 2))


class TestInference:
    @pytest.mark.parametrize("params", GRID, ids=str)
    def test_recovers_parameters(self, params):
        net = build_abccc(params)
        inferred = infer_params(net)
        # s is recovered from provisioned server ports; n and k from the
        # address structure.
        assert inferred.n == params.n
        assert inferred.k == params.k
        assert inferred.s == params.s

    def test_rejects_foreign_network(self, fattree_small):
        _, net = fattree_small
        with pytest.raises(ValueError):
            infer_params(net)

    def test_rejects_empty_network(self):
        from repro.topology.graph import Network

        with pytest.raises(ValueError, match="no servers"):
            infer_params(Network())
