"""Job-level workload model tests."""

import pytest

from repro.core import AbcccSpec
from repro.sim.jobs import (
    Job,
    JobSimResult,
    disseminate_job,
    incast_job,
    shuffle_job,
    simulate_jobs,
)
from repro.sim.traffic import Flow


@pytest.fixture(scope="module")
def fabric():
    spec = AbcccSpec(3, 1, 2)
    return spec, spec.build()


class TestJobConstruction:
    def test_shuffle_shape(self, fabric):
        _, net = fabric
        job = shuffle_job("j", 0.0, net.servers, 3, 4, seed=1)
        assert len(job.flows) == 12
        assert len({f.src for f in job.flows}) == 3
        assert len({f.dst for f in job.flows}) == 4
        assert job.total_volume == pytest.approx(12.0)

    def test_incast_shape(self, fabric):
        _, net = fabric
        job = incast_job("j", 0.0, net.servers, 5, seed=2)
        assert len(job.flows) == 5
        assert len({f.dst for f in job.flows}) == 1

    def test_disseminate_shape(self, fabric):
        _, net = fabric
        job = disseminate_job("j", 0.0, net.servers, 5, seed=3)
        assert len(job.flows) == 5
        assert len({f.src for f in job.flows}) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="no flows"):
            Job("j", 0.0, ())
        with pytest.raises(ValueError, match="negative"):
            Job("j", -1.0, (Flow("f", "a", "b"),))
        with pytest.raises(ValueError, match="duplicate"):
            Job("j", 0.0, (Flow("f", "a", "b"), Flow("f", "b", "a")))


class TestSimulation:
    def test_single_job_completion(self, fabric):
        spec, net = fabric
        job = shuffle_job("solo", 0.0, net.servers, 3, 3, seed=4)
        result = simulate_jobs(net, [job], spec.route)
        assert len(result.jobs) == 1
        record = result.job("solo")
        assert record.completion > 0
        assert record.duration == record.completion
        assert result.makespan == record.completion

    def test_job_completion_is_last_flow(self, fabric):
        spec, net = fabric
        job = incast_job("in", 0.0, net.servers, 4, seed=5)
        result = simulate_jobs(net, [job], spec.route)
        last_flow = max(
            result.flow_result.completion_times[f.flow_id] for f in job.flows
        )
        assert result.job("in").completion == pytest.approx(last_flow)

    def test_staggered_arrivals_ordered(self, fabric):
        spec, net = fabric
        early = shuffle_job("early", 0.0, net.servers, 2, 2, seed=6)
        late = shuffle_job("late", 50.0, net.servers, 2, 2, seed=7)
        result = simulate_jobs(net, [early, late], spec.route)
        assert result.job("early").completion < result.job("late").completion
        assert result.job("late").arrival == 50.0
        # By t=50 the early job has long finished, so the late job sees an
        # idle fabric and matches the early job's duration.
        assert result.job("late").duration == pytest.approx(
            result.job("early").duration, rel=0.3
        )

    def test_contention_slows_jobs(self, fabric):
        """Two simultaneous incasts to the same coordinator take longer
        than one alone."""
        spec, net = fabric
        solo = incast_job("a", 0.0, net.servers, 4, seed=8)
        result_solo = simulate_jobs(net, [solo], spec.route)
        a = incast_job("a", 0.0, net.servers, 4, seed=8)
        b = incast_job("b", 0.0, net.servers, 4, seed=8)
        # same seed -> same coordinator & workers; rename flows via job id
        result_both = simulate_jobs(net, [a, b], spec.route)
        assert result_both.job("a").duration > result_solo.job("a").duration

    def test_duplicate_flow_ids_across_jobs(self, fabric):
        spec, net = fabric
        job_a = Job("a", 0.0, (Flow("same", net.servers[0], net.servers[1]),))
        job_b = Job("b", 0.0, (Flow("same", net.servers[2], net.servers[3]),))
        with pytest.raises(ValueError, match="duplicate flow id"):
            simulate_jobs(net, [job_a, job_b], spec.route)

    def test_stats(self, fabric):
        spec, net = fabric
        jobs = [
            shuffle_job(f"j{i}", float(i), net.servers, 2, 2, seed=10 + i)
            for i in range(3)
        ]
        result = simulate_jobs(net, jobs, spec.route)
        durations = [j.duration for j in result.jobs]
        assert result.mean_duration == pytest.approx(sum(durations) / 3)
        assert result.p99_duration == max(durations)
        with pytest.raises(KeyError):
            result.job("ghost")
