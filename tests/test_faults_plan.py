"""Fault plans: provenance, rounding guard, seed streams, churn."""

import pytest

from repro.faults.plan import (
    FaultModel,
    FaultRoundingWarning,
    child_seed,
    churn_events,
    explicit_failures,
    rack_failures,
    random_failures,
    seed_stream,
)
from repro.metrics.connectivity import draw_failures, draw_rack_failures


class TestRandomFailures:
    def test_provenance_recorded(self, abccc_medium):
        _, net = abccc_medium
        plan = random_failures(net, server_fraction=0.2, switch_fraction=0.1, seed=4)
        assert plan.model == "random"
        assert plan.seed == 4
        assert plan.requested["server_fraction"] == 0.2
        assert plan.effective["dead_servers"] == len(plan.scenario.dead_servers)
        assert plan.effective["dead_switches"] == len(plan.scenario.dead_switches)
        assert plan.notes == ()

    def test_matches_legacy_draw_failures(self, abccc_medium):
        _, net = abccc_medium
        for seed in range(5):
            plan = random_failures(
                net, server_fraction=0.2, switch_fraction=0.1, seed=seed
            )
            legacy = draw_failures(
                net, server_fraction=0.2, switch_fraction=0.1, seed=seed
            )
            assert legacy == plan.scenario

    def test_deterministic_across_calls(self, abccc_medium):
        _, net = abccc_medium
        a = random_failures(net, server_fraction=0.3, link_fraction=0.1, seed=9)
        b = random_failures(net, server_fraction=0.3, link_fraction=0.1, seed=9)
        assert a == b

    def test_zero_fractions_draw_nothing(self, abccc_medium):
        _, net = abccc_medium
        plan = random_failures(net, seed=1)
        assert plan.is_empty
        assert plan.effective == {
            "dead_servers": 0,
            "dead_switches": 0,
            "dead_links": 0,
        }

    def test_rounding_floors_at_one_and_warns(self, tiny_net):
        # 5% of 1 switch rounds to zero -> floored to 1, loudly.
        with pytest.warns(FaultRoundingWarning):
            plan = random_failures(tiny_net, switch_fraction=0.05, seed=0)
        assert len(plan.scenario.dead_switches) == 1
        assert plan.notes and "floored" in plan.notes[0]

    def test_fraction_bounds_validated(self, tiny_net):
        with pytest.raises(ValueError, match="server_fraction"):
            random_failures(tiny_net, server_fraction=1.5)


class TestRackFailures:
    def test_matches_legacy_draw_rack_failures(self, abccc_medium):
        _, net = abccc_medium
        for seed in range(3):
            plan = rack_failures(net, 1, rack_capacity=8, seed=seed)
            legacy = draw_rack_failures(net, 1, rack_capacity=8, seed=seed)
            assert legacy == plan.scenario

    def test_num_racks_validated(self, abccc_medium):
        _, net = abccc_medium
        with pytest.raises(ValueError, match="num_racks"):
            rack_failures(net, 10_000, rack_capacity=8)


class TestExplicitFailures:
    def test_wraps_given_sets(self):
        plan = explicit_failures(dead_servers=("a",), dead_links=(("a", "sw"),))
        assert plan.model == "explicit"
        assert plan.seed is None
        assert plan.effective["dead_servers"] == 1
        assert plan.effective["dead_links"] == 1


class TestSeedStreams:
    def test_child_seed_is_stable(self):
        # Pinned values: must never change across refactors, or resumed
        # runs would redraw different scenarios.
        assert child_seed(0, "x") == child_seed(0, "x")
        assert child_seed(0, "x") != child_seed(0, "y")
        assert child_seed(0, "a", 1) != child_seed(0, "a", 2)

    def test_independent_of_hash_randomisation(self):
        # sha256-based, so a fixed literal can be pinned here.
        assert child_seed(7, "tag", 0.1, 3) == child_seed(7, "tag", 0.1, 3)
        stream_a = seed_stream(7, "tag").random()
        stream_b = seed_stream(7, "tag").random()
        assert stream_a == stream_b


class TestFaultModel:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            FaultModel("meteor")

    def test_server_switch_draw(self, abccc_medium):
        _, net = abccc_medium
        plan = FaultModel("server+switch").draw(net, 0.2, seed=3)
        assert plan.scenario.dead_servers and plan.scenario.dead_switches
        assert not plan.scenario.dead_links

    def test_level_zero_is_empty(self, abccc_medium):
        _, net = abccc_medium
        assert FaultModel("server").draw(net, 0.0, seed=3).is_empty


class TestChurnEvents:
    LIFETIMES = {"a": (10.0, 2.0), "b": (5.0, 1.0)}

    def test_deterministic(self):
        a = churn_events(self.LIFETIMES, duration=100.0, seed=5)
        b = churn_events(self.LIFETIMES, duration=100.0, seed=5)
        assert a == b

    def test_independent_of_dict_order(self):
        reordered = {"b": (5.0, 1.0), "a": (10.0, 2.0)}
        assert churn_events(self.LIFETIMES, 100.0, seed=5) == churn_events(
            reordered, 100.0, seed=5
        )

    def test_alternates_per_component(self):
        events = churn_events(self.LIFETIMES, duration=200.0, seed=1)
        for name in self.LIFETIMES:
            states = [e.up for e in events if e.component == name]
            # first transition is a failure, then strict alternation
            assert states[0] is False
            assert all(a != b for a, b in zip(states, states[1:]))

    def test_times_bounded_and_sorted(self):
        events = churn_events(self.LIFETIMES, duration=50.0, seed=2)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 50.0 for t in times)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            churn_events(self.LIFETIMES, duration=0.0)
        with pytest.raises(ValueError, match="mtbf"):
            churn_events({"a": (0.0, 1.0)}, duration=10.0)
