"""Unit tests for structural validation and link policies."""

import pytest

from repro.topology.graph import Network
from repro.topology.validate import (
    LinkPolicy,
    ValidationError,
    connected_component,
    find_problems,
    is_connected,
    validate_network,
)


def _direct_pair() -> Network:
    net = Network()
    net.add_server("a", ports=1)
    net.add_server("b", ports=1)
    net.add_link("a", "b")
    return net


def _switch_pair() -> Network:
    net = Network()
    net.add_switch("w1", ports=1)
    net.add_switch("w2", ports=1)
    net.add_link("w1", "w2")
    return net


class TestPolicies:
    def test_server_centric_rejects_direct_links(self):
        problems = find_problems(_direct_pair(), LinkPolicy.server_centric())
        assert any("server-server" in p for p in problems)

    def test_direct_server_allows_direct_links(self):
        assert find_problems(_direct_pair(), LinkPolicy.direct_server()) == []

    def test_switch_centric_allows_fabric_links(self):
        assert find_problems(_switch_pair(), LinkPolicy.switch_centric()) == []

    def test_server_centric_rejects_fabric_links(self):
        problems = find_problems(_switch_pair(), LinkPolicy.server_centric())
        assert any("switch-switch" in p for p in problems)

    def test_unrestricted_allows_everything(self):
        assert find_problems(_direct_pair(), LinkPolicy.unrestricted()) == []


class TestConnectivity:
    def test_disconnected_flagged(self):
        net = Network()
        net.add_server("a", ports=1)
        net.add_server("b", ports=1)
        problems = find_problems(net)
        assert any("not connected" in p for p in problems)

    def test_disconnection_waivable(self):
        net = Network()
        net.add_server("a", ports=1)
        net.add_server("b", ports=1)
        assert find_problems(net, require_connected=False) == []

    def test_empty_net_is_connected(self):
        assert is_connected(Network())

    def test_connected_component(self):
        net = Network()
        for name in "abc":
            net.add_server(name, ports=2)
        net.add_link("a", "b")
        assert connected_component(net, "a") == {"a", "b"}
        assert connected_component(net, "c") == {"c"}


class TestValidateNetwork:
    def test_raises_with_all_problems(self):
        net = _direct_pair()
        net.add_server("lonely", ports=1)
        with pytest.raises(ValidationError) as excinfo:
            validate_network(net, LinkPolicy.server_centric())
        assert len(excinfo.value.problems) == 2

    def test_passes_clean_network(self, tiny_net):
        validate_network(tiny_net, LinkPolicy.server_centric())

    def test_port_budget_violation_detected(self):
        # Bypass add_link's check by mutating internals, as a corrupted
        # failure-injection path might.
        net = _direct_pair()
        net._adj["a"].add("x")
        net._nodes["x"] = net._nodes["b"]
        problems = find_problems(net, require_connected=False)
        assert any("port budget" in p for p in problems)
