"""Adaptive source routing: tracker accounting and policy behaviour."""

import pytest

from repro.core import AbcccSpec
from repro.core.source_routing import (
    AdaptiveSourceRouter,
    LinkLoadTracker,
    PLACEMENT_POLICIES,
    place_flows_adaptive,
    place_flows_fixed,
    place_flows_hashed,
)
from repro.metrics.bottleneck import load_stats
from repro.routing.base import Route
from repro.sim.traffic import Flow, permutation_traffic


@pytest.fixture(scope="module")
def instance():
    spec = AbcccSpec(3, 2, 2)
    return spec, spec.build()


class TestTracker:
    def test_place_and_remove(self, instance):
        _, net = instance
        tracker = LinkLoadTracker(net)
        route = Route.of([net.servers[0], next(iter(net.neighbors(net.servers[0])))])
        tracker.place(route)
        u, v = route.nodes
        assert tracker.load(u, v) == 1.0
        tracker.place(route)
        assert tracker.load(u, v) == 2.0
        tracker.remove(route)
        tracker.remove(route)
        assert tracker.load(u, v) == 0.0
        assert tracker.max_load == 0.0

    def test_bottleneck_and_total(self, instance):
        spec, net = instance
        tracker = LinkLoadTracker(net)
        route = spec.route(net, net.servers[0], net.servers[-1])
        assert tracker.bottleneck(route) == 0.0
        tracker.place(route)
        assert tracker.bottleneck(route) == 1.0
        assert tracker.total(route) == route.link_hops

    def test_zero_hop_route(self, instance):
        _, net = instance
        tracker = LinkLoadTracker(net)
        assert tracker.bottleneck(Route.of([net.servers[0]])) == 0.0


class TestAdaptiveRouter:
    def test_first_flow_prefers_shortest(self, instance):
        from repro.core.address import ServerAddress

        spec, net = instance
        router = AdaptiveSourceRouter(spec.abccc, net)
        src, dst = net.servers[0], net.servers[-1]
        choice = router.choose(Flow("f", src, dst))
        candidates = router.candidates(
            ServerAddress.parse(src), ServerAddress.parse(dst)
        )
        assert choice.route.link_hops == min(r.link_hops for r in candidates)
        assert choice.bottleneck_before == 0.0

    def test_repeat_flows_spread(self, instance):
        """Many flows between the same endpoints must use different
        rotation paths as congestion builds."""
        spec, net = instance
        router = AdaptiveSourceRouter(spec.abccc, net)
        src, dst = "s0.0.0/0", "s2.2.2/0"
        chosen = {router.choose(Flow(f"f{i}", src, dst)).route.nodes for i in range(6)}
        assert len(chosen) >= 2

    def test_routes_valid(self, instance):
        spec, net = instance
        flows = permutation_traffic(net.servers, seed=9)
        routes = place_flows_adaptive(spec.abccc, net, flows)
        for route in routes.values():
            route.validate(net)

    def test_route_protocol_adapter(self, instance):
        spec, net = instance
        router = AdaptiveSourceRouter(spec.abccc, net)
        route = router.route(net, net.servers[0], net.servers[-1], flow_id="x")
        route.validate(net)
        with pytest.raises(ValueError, match="bound"):
            router.route(spec.build(), net.servers[0], net.servers[-1])


class TestPolicyComparison:
    def test_adaptive_beats_fixed_on_hot_pairs(self, instance):
        """With many flows between few endpoint pairs, adaptive spreading
        must strictly lower the max link load vs the fixed single path."""
        spec, net = instance
        pairs = [("s0.0.0/0", "s2.2.2/0"), ("s0.0.0/1", "s2.2.2/1")]
        flows = [
            Flow(f"f{i}", src, dst) for i, (src, dst) in enumerate(pairs * 6)
        ]
        fixed = place_flows_fixed(spec.abccc, net, flows)
        adaptive = place_flows_adaptive(spec.abccc, net, flows)
        fixed_max = load_stats(net, fixed.values()).max_load
        adaptive_max = load_stats(net, adaptive.values()).max_load
        assert adaptive_max < fixed_max

    def test_hashed_is_deterministic(self, instance):
        spec, net = instance
        flows = permutation_traffic(net.servers, seed=11)
        a = place_flows_hashed(spec.abccc, net, flows)
        b = place_flows_hashed(spec.abccc, net, flows)
        assert {k: r.nodes for k, r in a.items()} == {k: r.nodes for k, r in b.items()}

    def test_policy_registry(self):
        assert set(PLACEMENT_POLICIES) == {"adaptive", "fixed", "hashed", "vlb"}

    def test_all_policies_route_all_flows(self, instance):
        spec, net = instance
        flows = permutation_traffic(net.servers, seed=13)
        for place in PLACEMENT_POLICIES.values():
            routes = place(spec.abccc, net, flows)
            assert set(routes) == {f.flow_id for f in flows}
            for flow in flows:
                assert routes[flow.flow_id].source == flow.src
                assert routes[flow.flow_id].destination == flow.dst


class TestVlb:
    def test_routes_valid_walks(self, instance):
        from repro.core.source_routing import place_flows_vlb

        spec, net = instance
        flows = permutation_traffic(net.servers, seed=21)
        routes = place_flows_vlb(spec.abccc, net, flows)
        for route in routes.values():
            route.validate(net)  # walks may repeat nodes but use real links

    def test_longer_than_direct_on_average(self, instance):
        from repro.core.source_routing import place_flows_fixed, place_flows_vlb

        spec, net = instance
        flows = permutation_traffic(net.servers, seed=22)
        direct = place_flows_fixed(spec.abccc, net, flows)
        vlb = place_flows_vlb(spec.abccc, net, flows)
        mean = lambda routes: sum(r.link_hops for r in routes.values()) / len(routes)
        assert mean(vlb) > mean(direct)
        # ... but bounded by twice the diameter.
        from repro.core import properties

        bound = 2 * 2 * properties.diameter_server_hops(spec.abccc)
        assert all(r.link_hops <= bound for r in vlb.values())

    def test_deterministic(self, instance):
        from repro.core.source_routing import place_flows_vlb

        spec, net = instance
        flows = permutation_traffic(net.servers, seed=23)
        a = place_flows_vlb(spec.abccc, net, flows)
        b = place_flows_vlb(spec.abccc, net, flows)
        assert {k: r.nodes for k, r in a.items()} == {k: r.nodes for k, r in b.items()}

    def test_spreads_adversarial_hotpair(self, instance):
        """Many flows between one pair: VLB's random intermediates spread
        them where the fixed path stacks them all on one route."""
        from repro.core.source_routing import place_flows_fixed, place_flows_vlb

        spec, net = instance
        flows = [Flow(f"f{i}", "s0.0.0/0", "s2.2.2/0") for i in range(12)]
        fixed = load_stats(net, place_flows_fixed(spec.abccc, net, flows).values())
        vlb = load_stats(net, place_flows_vlb(spec.abccc, net, flows).values())
        assert vlb.max_load < fixed.max_load
