"""Closed-form ABCCC properties vs brute force on built instances.

This is the module that licenses the analytic sweeps of the experiment
suite: every formula in :mod:`repro.core.properties` is checked against
exhaustive counting / BFS over a parameter grid.
"""

import itertools

import pytest

from repro.core import properties
from repro.core.address import AbcccParams
from repro.core.topology import build_abccc
from repro.metrics.bisection import digit_split_abccc, partition_cut_width
from repro.metrics.distance import server_hop_stats
from repro.routing.shortest import bfs_distances

#: the grid: every (n, k, s) with n in 2..4, k in 0..2, s in 2..k+3
GRID = [
    AbcccParams(n, k, s)
    for n, k in itertools.product((2, 3, 4), (0, 1, 2))
    for s in range(2, k + 4)
]


@pytest.fixture(scope="module")
def built():
    return {params: build_abccc(params) for params in GRID}


class TestCounts:
    def test_server_count(self, built):
        for params, net in built.items():
            assert net.num_servers == properties.num_servers(params), params

    def test_switch_count(self, built):
        for params, net in built.items():
            assert net.num_switches == properties.num_switches(params), params

    def test_switch_roles(self, built):
        for params, net in built.items():
            crossbars = net.switches_by_role("crossbar")
            levels = net.switches_by_role("level")
            assert len(crossbars) == properties.num_crossbar_switches(params), params
            assert len(levels) == properties.num_level_switches(params), params

    def test_link_count(self, built):
        for params, net in built.items():
            assert net.num_links == properties.num_links(params), params

    def test_level_link_count(self, built):
        for params, net in built.items():
            level_links = sum(
                1
                for link in net.links()
                if link.u.startswith("l") or link.v.startswith("l")
            )
            assert level_links == properties.num_level_links(params), params


class TestDiameter:
    def test_server_hop_diameter_exact(self, built):
        """The k + c + 1 formula is *exact*: BFS over every pair agrees."""
        for params, net in built.items():
            measured = server_hop_stats(net).diameter
            assert measured == properties.diameter_server_hops(params), params

    def test_link_hop_diameter_is_double(self, built):
        for params, net in built.items():
            servers = set(net.servers)
            worst = 0
            for src in net.servers:
                dist = bfs_distances(net, src)
                worst = max(worst, max(dist[d] for d in servers))
            assert worst == properties.diameter_link_hops(params), params


class TestBisection:
    def test_digit_cut_achieves_formula(self, built):
        """For even n the level-k digit cut has exactly n^(k+1)/2 links."""
        for params, net in built.items():
            if params.n % 2 != 0:
                continue
            side = digit_split_abccc(net, params.k)
            width = partition_cut_width(net, side)
            assert width == properties.bisection_links(params), params

    def test_odd_n_has_no_closed_form(self):
        assert properties.bisection_links(AbcccParams(3, 1, 2)) is None

    def test_per_server_formula(self):
        params = AbcccParams(4, 3, 2)
        assert properties.bisection_per_server(params) == pytest.approx(1 / 8)
        params = AbcccParams(4, 3, 5)  # c = 1: BCube's 1/2
        assert properties.bisection_per_server(params) == pytest.approx(1 / 2)


class TestExpectedRouteLength:
    @pytest.mark.parametrize(
        "params",
        [AbcccParams(2, 1, 2), AbcccParams(3, 1, 2), AbcccParams(2, 2, 2), AbcccParams(3, 2, 3), AbcccParams(2, 2, 3)],
        ids=str,
    )
    def test_formula_matches_exhaustive_mean(self, params):
        """The closed form equals the exact mean of the locality route
        length over ALL ordered pairs (identical pairs included)."""
        from repro.core.address import ServerAddress
        from repro.core.routing import logical_distance

        total = params.num_crossbars * params.crossbar_size
        addresses = [ServerAddress.from_rank(params, r) for r in range(total)]
        mean = sum(
            logical_distance(params, a, b) for a in addresses for b in addresses
        ) / (total * total)
        assert properties.expected_server_hops(params) == pytest.approx(mean)

    def test_bcube_case_is_pure_corrections(self):
        params = AbcccParams(4, 2, 4)  # c = 1
        assert properties.expected_server_hops(params) == pytest.approx(
            3 * (1 - 1 / 4)
        )

    def test_link_hops_double(self):
        params = AbcccParams(3, 2, 2)
        assert properties.expected_link_hops(params) == pytest.approx(
            2 * properties.expected_server_hops(params)
        )

    def test_mean_below_diameter(self):
        for params in GRID:
            assert (
                properties.expected_server_hops(params)
                <= properties.diameter_server_hops(params)
            )


class TestSpecialCases:
    def test_bcube_degeneration_counts(self):
        """c == 1 collapses to BCube: same servers, switches, links."""
        from repro.baselines.bcube import BcubeSpec

        params = AbcccParams(3, 2, 4)
        bcube = BcubeSpec(3, 2)
        assert properties.num_servers(params) == bcube.num_servers
        assert properties.num_switches(params) == bcube.num_switches
        assert properties.num_links(params) == bcube.num_links
        assert properties.diameter_server_hops(params) == bcube.diameter_server_hops

    def test_bccc_diameter_linear_in_k(self):
        diameters = [
            properties.diameter_server_hops(AbcccParams(4, k, 2)) for k in range(1, 6)
        ]
        assert diameters == [2 * k + 2 for k in range(1, 6)]

    def test_crossbar_switch_ports_commodity(self):
        assert properties.crossbar_switch_ports(AbcccParams(8, 3, 2)) == 8
        # crossbars can outgrow the radix only when k + 1 > n
        assert properties.crossbar_switch_ports(AbcccParams(2, 3, 2)) == 4

    def test_expansion_server_requirement(self):
        assert properties.expansion_requires_new_server(AbcccParams(4, 1, 2))
        # s=3, k=1: 2 levels on server 0, level 2 would start server 1 -> new
        assert properties.expansion_requires_new_server(AbcccParams(4, 1, 3))
        # s=3, k=2: server 1 owns level 2 and has a spare port for level 3
        assert not properties.expansion_requires_new_server(AbcccParams(4, 2, 3))

    def test_parallel_path_count(self):
        assert properties.parallel_path_count(AbcccParams(4, 3, 2)) == 4
