"""`repro obs report`: summarisation, rendering, CLI, end-to-end trace."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.report import (
    cache_hit_lines,
    follow_trace,
    load_trace,
    render_report,
    render_tail_event,
    render_trace,
    report_files,
    report_trace_id,
    summarize,
    trace_spans,
    validate_trace,
)

MAIN_PID = 100
WORKER_A = 201
WORKER_B = 202


def _fixture_events():
    """A small hand-built trace with known numbers.

    Timeline (seconds): meta at t=0; the experiment span covers
    [0, 10]; a pool span covers [2, 8] with 2 workers and 4 tasks;
    each worker contributes 2.4s of top-level busy time inside the
    window (utilization = 4.8 / (2 x 6) = 40%).
    """
    events = [
        {
            "ev": "meta", "t": 0.0, "schema": 1,
            "tags": {"experiment": "F8", "quick": 0, "workers": 2},
            "pid": MAIN_PID, "seq": 0,
        },
        {
            "ev": "span", "t": 0.0, "dur": 10.0, "name": "experiment",
            "sid": 1, "parent": None, "tags": {"exp": "F8"},
            "pid": MAIN_PID, "seq": 1,
        },
        {
            "ev": "span", "t": 0.5, "dur": 1.0, "name": "faults.plan",
            "sid": 2, "parent": 1, "tags": {"model": "server"},
            "pid": MAIN_PID, "seq": 2,
        },
        {
            "ev": "span", "t": 2.0, "dur": 6.0, "name": "pool",
            "sid": 3, "parent": 1,
            "tags": {"context": "degradation sweep X/server", "workers": 2,
                     "tasks": 4},
            "pid": MAIN_PID, "seq": 3,
        },
        {
            "ev": "span", "t": 8.5, "dur": 0.5, "name": "faults.journal",
            "sid": 4, "parent": 1, "tags": {},
            "pid": MAIN_PID, "seq": 4,
        },
        {
            "ev": "counters", "t": 9.9,
            "values": {"compiled.link.cache_hit": 9,
                       "compiled.link.cache_miss": 1,
                       "faults.trials": 4},
            "pid": MAIN_PID, "seq": 5,
        },
        {"ev": "rss", "t": 5.0, "rss_mb": 120.0, "peak_mb": 150.0,
         "pid": MAIN_PID, "seq": 6},
        {"ev": "rss", "t": 9.0, "rss_mb": 110.0, "peak_mb": 155.5,
         "pid": MAIN_PID, "seq": 7},
    ]
    seq = 0
    for pid, t0 in ((WORKER_A, 2.5), (WORKER_B, 3.0)):
        for i in range(2):
            events.append(
                {
                    "ev": "span", "t": t0 + 1.5 * i, "dur": 1.2,
                    "name": "faults.trial", "sid": pid * 1_000_000 + i + 1,
                    "parent": None, "tags": {"level": 0.1},
                    "pid": pid, "seq": seq + i,
                }
            )
        seq += 2
    return events


@pytest.fixture
def fixture_trace(tmp_path):
    path = tmp_path / "f8.trace.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for event in _fixture_events():
            handle.write(json.dumps(event) + "\n")
    return str(path)


class TestSummarize:
    def test_fixture_is_schema_valid(self, fixture_trace):
        assert validate_trace(load_trace(fixture_trace)) == []

    def test_wall_phases_and_peak(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        assert summary.main_pid == MAIN_PID
        assert summary.worker_pids == [WORKER_A, WORKER_B]
        assert summary.wall_s == pytest.approx(10.0)
        assert summary.peak_rss_mb == pytest.approx(155.5)
        assert summary.phases["experiment"].total_s == pytest.approx(10.0)
        assert summary.phases["faults.trial"].count == 4
        assert summary.phases["faults.trial"].total_s == pytest.approx(4.8)
        assert summary.phases["faults.plan"].mean_ms == pytest.approx(1000.0)

    def test_worker_utilization(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        (pool,) = summary.pools
        assert pool.context == "degradation sweep X/server"
        assert pool.workers == 2
        assert pool.tasks == 4
        assert pool.wall_s == pytest.approx(6.0)
        assert pool.busy_s == pytest.approx(4.8)
        assert pool.utilization == pytest.approx(0.4)

    def test_slowest_ordering(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        top = summary.slowest(3)
        assert [s["name"] for s in top] == ["experiment", "pool", "faults.trial"]

    def test_counters_merged(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        assert summary.counters["faults.trials"] == 4
        assert summary.counters["compiled.link.cache_hit"] == 9

    def test_counters_cumulative_per_pid(self):
        # Values are cumulative per emitting process: the latest event
        # per pid supersedes earlier snapshots, distinct pids sum.
        events = [
            {"ev": "counters", "t": 1.0, "values": {"n": 2}, "pid": 200,
             "seq": 0},
            {"ev": "counters", "t": 2.0, "values": {"n": 5}, "pid": 200,
             "seq": 1},
            {"ev": "counters", "t": 3.0, "values": {"n": 3}, "pid": 100,
             "seq": 0},
        ]
        assert summarize(events).counters["n"] == 8


class TestRender:
    def test_report_sections_golden(self, fixture_trace):
        text = render_report(fixture_trace, summarize(load_trace(fixture_trace)))
        assert "run: experiment=F8 quick=0 workers=2" in text
        assert "wall 10.000s" in text
        assert "peak RSS 155.5 MB" in text
        assert "processes: main pid 100 + 2 workers" in text
        assert "phase breakdown" in text
        # experiment row: count 1, total 10.000, 100% of wall.
        assert "experiment" in text and "100.0%" in text
        assert "faults.trial" in text
        assert "slowest spans" in text
        assert "worker pools:" in text
        assert "40.0%" in text  # utilization of the fixture pool
        assert "compiled.link" in text and "(90% hit)" in text
        assert "warnings: none" in text

    def test_warnings_listed(self, tmp_path):
        events = _fixture_events()
        events.append(
            {
                "ev": "warning", "t": 7.0, "kind": "degraded-mode",
                "message": "pool died", "data": {"workers": 2},
                "pid": MAIN_PID, "seq": 99,
            }
        )
        path = tmp_path / "warn.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        text = render_report(str(path), summarize(load_trace(str(path))))
        assert "warnings (1):" in text
        assert "[degraded-mode] pool died" in text

    def test_cache_hit_lines_math(self):
        lines = cache_hit_lines(
            {"x.cache_hit": 3, "x.cache_miss": 1, "unrelated": 5}
        )
        assert len(lines) == 1
        assert "3 hit / 1 miss (75% hit)" in lines[0]
        assert cache_hit_lines({"unrelated": 5}) == []


class TestCli:
    def test_obs_report_cli(self, fixture_trace, capsys):
        assert main(["obs", "report", fixture_trace]) == 0
        out = capsys.readouterr().out
        assert f"=== trace: {fixture_trace} ===" in out
        assert "phase breakdown" in out

    def test_obs_report_multiple_files(self, fixture_trace, tmp_path, capsys):
        import shutil

        second = str(tmp_path / "second.jsonl")
        shutil.copy(fixture_trace, second)
        assert main(["obs", "report", fixture_trace, second]) == 0
        out = capsys.readouterr().out
        assert out.count("=== trace:") == 2

    def test_obs_report_missing_file(self, capsys):
        # A not-yet-written trace is a normal operational state, not an
        # error: dashboards must see "no events" and a zero exit.
        assert main(["obs", "report", "/nonexistent/trace.jsonl"]) == 0
        assert "no events" in capsys.readouterr().out

    def test_obs_report_reports_schema_problems(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "mystery", "t": 0.0, "pid": 1, "seq": 0}\n')
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schema problems" in out

    def test_run_trace_flag_produces_valid_trace(self, tmp_path, capsys):
        out_dir = str(tmp_path)
        trace_path = os.path.join(out_dir, "f8.trace.jsonl")
        assert (
            main(["run", "F8", "--quick", "--out", out_dir, "--trace"]) == 0
        )
        capsys.readouterr()
        assert os.path.exists(trace_path)
        events = load_trace(trace_path)
        assert validate_trace(events) == []
        names = {e.get("name") for e in events if e.get("ev") == "span"}
        # The acceptance phases are all present in an F8 trace.
        assert {"experiment", "faults.plan", "faults.mask", "faults.trial",
                "faults.journal", "topology.compile"} <= names
        assert main(["obs", "report", trace_path]) == 0
        report = capsys.readouterr().out
        for needle in ("faults.plan", "faults.mask", "faults.trial",
                       "faults.journal", "peak RSS"):
            assert needle in report


class TestHarnessIntegration:
    def test_run_experiment_trace_argument(self, tmp_path):
        from repro.experiments import run_experiment

        path = str(tmp_path / "custom-name.jsonl")
        run_experiment(
            "F11", quick=True, out_dir=str(tmp_path), verbose=False, trace=path
        )
        events = load_trace(path)
        assert validate_trace(events) == []
        meta = events[0]
        assert meta["tags"]["experiment"] == "F11"

    def test_trace_env_variable(self, tmp_path, monkeypatch):
        from repro.experiments import run_experiment

        monkeypatch.setenv("REPRO_TRACE", "1")
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        default_path = tmp_path / "f11.trace.jsonl"
        assert default_path.exists()
        assert validate_trace(load_trace(str(default_path))) == []

    def test_no_trace_file_without_optin(self, tmp_path, monkeypatch):
        from repro.experiments import run_experiment

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        assert not list(tmp_path.glob("*.trace.jsonl"))

    def test_runtimes_csv_phase_columns_populated(self, tmp_path):
        import csv

        from repro.experiments import run_experiment

        run_experiment("F8", quick=True, out_dir=str(tmp_path), verbose=False)
        with open(tmp_path / "runtimes.csv", newline="") as handle:
            (row,) = list(csv.DictReader(handle))
        assert row["experiment"] == "F8"
        # F8 runs fault sweeps: plan/trials/journal phases are non-zero
        # in the parent, and the peak-RSS cell is filled on Linux/POSIX.
        assert float(row["trials_s"]) > 0.0
        assert float(row["wall_time_s"]) >= float(row["trials_s"])
        if row["peak_rss_mb"]:
            assert float(row["peak_rss_mb"]) > 0.0

    def test_profile_flag_writes_prof(self, tmp_path):
        from repro.experiments import run_experiment

        run_experiment(
            "F11", quick=True, out_dir=str(tmp_path), verbose=False, profile=True
        )
        assert (tmp_path / "f11.prof").exists()


def _traced_span(pid, sid, t, dur, name, trace=None, parent=None, seq=0, **tags):
    if trace is not None:
        tags["trace"] = trace
    return {
        "ev": "span", "t": t, "dur": dur, "name": name, "sid": sid,
        "parent": parent, "tags": tags, "pid": pid, "seq": seq,
    }


class TestTraceStitching:
    """``--trace-id``: one request's spans across processes, as a tree."""

    def _request_events(self):
        # client pid 300, server pid 100, worker pid 201 — one request.
        return [
            _traced_span(300, 1, 10.0, 0.050, "serve.client.request",
                         trace="abc123", seq=0, method="POST", path="/route"),
            _traced_span(100, 7, 10.010, 0.004, "serve.queue",
                         trace="abc123", seq=0, op="route", slot=0),
            _traced_span(201, 5, 10.015, 0.030, "serve.execute",
                         trace="abc123", seq=0, op="route"),
            _traced_span(201, 6, 10.016, 0.025, "serve.bfs",
                         trace="abc123", parent=5, seq=1, op="route"),
            # unrelated request that must not leak into the stitch
            _traced_span(201, 9, 10.5, 0.010, "serve.execute",
                         trace="zzz999", seq=2, op="distance"),
            # untraced background span
            _traced_span(100, 8, 10.6, 0.001, "housekeeping", seq=1),
        ]

    def test_trace_spans_filters_and_sorts(self):
        spans = trace_spans(self._request_events(), "abc123")
        assert [s["name"] for s in spans] == [
            "serve.client.request", "serve.queue", "serve.execute", "serve.bfs",
        ]

    def test_render_trace_tree(self):
        spans = trace_spans(self._request_events(), "abc123")
        text = render_trace("abc123", spans)
        lines = text.splitlines()
        assert lines[0].startswith("trace abc123: 4 span(s) across 3 process(es)")
        # serve.bfs nests under serve.execute (same pid, parent sid)
        bfs_line = next(line for line in lines if "serve.bfs" in line)
        execute_line = next(line for line in lines if "serve.execute" in line)
        assert bfs_line.index("serve.bfs") > execute_line.index("serve.execute")
        # offsets are relative to the trace start (client span at 0)
        client_line = next(
            line for line in lines if "serve.client.request" in line
        )
        assert client_line.split()[0] == "0.00"
        # the stitch tag itself is not displayed as a span tag
        assert "trace=" not in text

    def test_report_trace_id_across_files(self, tmp_path):
        events = self._request_events()
        path_a = tmp_path / "client.trace.jsonl"
        path_b = tmp_path / "server.trace.jsonl"
        with open(path_a, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(events[0]) + "\n")
        with open(path_b, "w", encoding="utf-8") as handle:
            for event in events[1:]:
                handle.write(json.dumps(event) + "\n")
        text, count = report_trace_id([str(path_a), str(path_b)], "abc123")
        assert count == 4
        assert "serve.client.request" in text and "serve.bfs" in text

    def test_unknown_trace_id_renders_no_spans(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._request_events():
                handle.write(json.dumps(event) + "\n")
        text, count = report_trace_id([str(path)], "not-a-trace")
        assert count == 0
        assert "no spans" in text


class TestMemorySection:
    def test_rss_by_pid_tracks_workers(self, tmp_path):
        events = _fixture_events()
        events.append({"ev": "rss", "t": 5.0, "rss_mb": 70.0, "peak_mb": 80.0,
                       "pid": WORKER_A, "seq": 90})
        events.append({"ev": "rss", "t": 6.0, "rss_mb": 75.0, "peak_mb": 85.0,
                       "pid": WORKER_A, "seq": 91})
        summary = summarize(events)
        assert summary.rss_by_pid[MAIN_PID] == 155.5
        assert summary.rss_by_pid[WORKER_A] == 85.0
        text = render_report("x.jsonl", summary)
        assert "memory (peak RSS per process):" in text
        assert "main" in text and "worker" in text
        assert "pool total" in text

    def test_single_process_trace_has_no_memory_section(self):
        summary = summarize(_fixture_events())
        assert len(summary.rss_by_pid) == 1
        text = render_report("x.jsonl", summary)
        assert "memory (peak RSS per process):" not in text


class TestTail:
    def test_follow_yields_appended_events_and_stops_at_max(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        events = _fixture_events()[:4]
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        seen = list(
            follow_trace(path, poll_s=0.01, timeout_s=2.0, max_events=4)
        )
        assert [e["ev"] for e in seen] == [e["ev"] for e in events]

    def test_follow_holds_back_partial_lines(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        whole = json.dumps(_fixture_events()[0])
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(whole + "\n")
            handle.write('{"ev": "span", "t": 1.0, "na')  # writer mid-line
        follower = follow_trace(path, poll_s=0.01, timeout_s=0.2)
        first = next(follower)
        assert first["ev"] == "meta"
        # the partial tail is held back, then the follower times out
        assert list(follower) == []

    def test_follow_times_out_on_missing_file(self, tmp_path):
        path = str(tmp_path / "never-written.jsonl")
        assert list(follow_trace(path, poll_s=0.01, timeout_s=0.1)) == []

    def test_follow_picks_up_shards(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(_fixture_events()[0]) + "\n")
        shard = f"{path}.shard-201"
        with open(shard, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(_traced_span(201, 1, 2.0, 0.1, "worker-span")) + "\n"
            )
        seen = list(follow_trace(path, poll_s=0.01, timeout_s=0.5, max_events=2))
        assert {e["ev"] for e in seen} == {"meta", "span"}

    def test_render_tail_event_forms(self):
        span_line = render_tail_event(
            _traced_span(7, 1, 0.0, 0.0123, "serve.execute", op="route")
        )
        assert "serve.execute" in span_line and "12.30 ms" in span_line
        warn_line = render_tail_event(
            {"ev": "warning", "pid": 7, "kind": "truncated-shard",
             "message": "skipped 1", "data": {}}
        )
        assert "truncated-shard" in warn_line
        rss_line = render_tail_event(
            {"ev": "rss", "pid": 7, "rss_mb": 10.0, "peak_mb": 12.0}
        )
        assert "12.0 MB" in rss_line
        assert render_tail_event({"ev": "counters", "pid": 7, "values": {}}) is None


class TestCliTelemetry:
    def test_obs_report_empty_trace_prints_no_events_exit_zero(
        self, tmp_path, capsys
    ):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "report", str(empty)]) == 0
        assert "no events" in capsys.readouterr().out

    def test_obs_report_missing_trace_prints_no_events_exit_zero(
        self, tmp_path, capsys
    ):
        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 0
        assert "no events" in capsys.readouterr().out

    def test_obs_report_trace_id_flag(self, tmp_path, capsys):
        path = tmp_path / "t.trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    _traced_span(1, 1, 0.0, 0.1, "serve.client.request",
                                 trace="feed42")
                )
                + "\n"
            )
        assert main(["obs", "report", str(path), "--trace-id", "feed42"]) == 0
        out = capsys.readouterr().out
        assert "trace feed42" in out and "serve.client.request" in out

    def test_obs_report_unknown_trace_id_is_no_events(self, tmp_path, capsys):
        path = tmp_path / "t.trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(_traced_span(1, 1, 0.0, 0.1, "x", trace="real"))
                + "\n"
            )
        assert main(["obs", "report", str(path), "--trace-id", "ghost"]) == 0
        assert "no events" in capsys.readouterr().out

    def test_obs_tail_cli(self, tmp_path, capsys):
        path = tmp_path / "t.trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in _fixture_events()[:3]:
                handle.write(json.dumps(event) + "\n")
        assert main(
            ["obs", "tail", str(path), "--poll", "0.01", "--timeout", "0.1",
             "--max-events", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "meta" in out and "span" in out
