"""`repro obs report`: summarisation, rendering, CLI, end-to-end trace."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.report import (
    cache_hit_lines,
    load_trace,
    render_report,
    report_files,
    summarize,
    validate_trace,
)

MAIN_PID = 100
WORKER_A = 201
WORKER_B = 202


def _fixture_events():
    """A small hand-built trace with known numbers.

    Timeline (seconds): meta at t=0; the experiment span covers
    [0, 10]; a pool span covers [2, 8] with 2 workers and 4 tasks;
    each worker contributes 2.4s of top-level busy time inside the
    window (utilization = 4.8 / (2 x 6) = 40%).
    """
    events = [
        {
            "ev": "meta", "t": 0.0, "schema": 1,
            "tags": {"experiment": "F8", "quick": 0, "workers": 2},
            "pid": MAIN_PID, "seq": 0,
        },
        {
            "ev": "span", "t": 0.0, "dur": 10.0, "name": "experiment",
            "sid": 1, "parent": None, "tags": {"exp": "F8"},
            "pid": MAIN_PID, "seq": 1,
        },
        {
            "ev": "span", "t": 0.5, "dur": 1.0, "name": "faults.plan",
            "sid": 2, "parent": 1, "tags": {"model": "server"},
            "pid": MAIN_PID, "seq": 2,
        },
        {
            "ev": "span", "t": 2.0, "dur": 6.0, "name": "pool",
            "sid": 3, "parent": 1,
            "tags": {"context": "degradation sweep X/server", "workers": 2,
                     "tasks": 4},
            "pid": MAIN_PID, "seq": 3,
        },
        {
            "ev": "span", "t": 8.5, "dur": 0.5, "name": "faults.journal",
            "sid": 4, "parent": 1, "tags": {},
            "pid": MAIN_PID, "seq": 4,
        },
        {
            "ev": "counters", "t": 9.9,
            "values": {"compiled.link.cache_hit": 9,
                       "compiled.link.cache_miss": 1,
                       "faults.trials": 4},
            "pid": MAIN_PID, "seq": 5,
        },
        {"ev": "rss", "t": 5.0, "rss_mb": 120.0, "peak_mb": 150.0,
         "pid": MAIN_PID, "seq": 6},
        {"ev": "rss", "t": 9.0, "rss_mb": 110.0, "peak_mb": 155.5,
         "pid": MAIN_PID, "seq": 7},
    ]
    seq = 0
    for pid, t0 in ((WORKER_A, 2.5), (WORKER_B, 3.0)):
        for i in range(2):
            events.append(
                {
                    "ev": "span", "t": t0 + 1.5 * i, "dur": 1.2,
                    "name": "faults.trial", "sid": pid * 1_000_000 + i + 1,
                    "parent": None, "tags": {"level": 0.1},
                    "pid": pid, "seq": seq + i,
                }
            )
        seq += 2
    return events


@pytest.fixture
def fixture_trace(tmp_path):
    path = tmp_path / "f8.trace.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for event in _fixture_events():
            handle.write(json.dumps(event) + "\n")
    return str(path)


class TestSummarize:
    def test_fixture_is_schema_valid(self, fixture_trace):
        assert validate_trace(load_trace(fixture_trace)) == []

    def test_wall_phases_and_peak(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        assert summary.main_pid == MAIN_PID
        assert summary.worker_pids == [WORKER_A, WORKER_B]
        assert summary.wall_s == pytest.approx(10.0)
        assert summary.peak_rss_mb == pytest.approx(155.5)
        assert summary.phases["experiment"].total_s == pytest.approx(10.0)
        assert summary.phases["faults.trial"].count == 4
        assert summary.phases["faults.trial"].total_s == pytest.approx(4.8)
        assert summary.phases["faults.plan"].mean_ms == pytest.approx(1000.0)

    def test_worker_utilization(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        (pool,) = summary.pools
        assert pool.context == "degradation sweep X/server"
        assert pool.workers == 2
        assert pool.tasks == 4
        assert pool.wall_s == pytest.approx(6.0)
        assert pool.busy_s == pytest.approx(4.8)
        assert pool.utilization == pytest.approx(0.4)

    def test_slowest_ordering(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        top = summary.slowest(3)
        assert [s["name"] for s in top] == ["experiment", "pool", "faults.trial"]

    def test_counters_merged(self, fixture_trace):
        summary = summarize(load_trace(fixture_trace))
        assert summary.counters["faults.trials"] == 4
        assert summary.counters["compiled.link.cache_hit"] == 9

    def test_counters_cumulative_per_pid(self):
        # Values are cumulative per emitting process: the latest event
        # per pid supersedes earlier snapshots, distinct pids sum.
        events = [
            {"ev": "counters", "t": 1.0, "values": {"n": 2}, "pid": 200,
             "seq": 0},
            {"ev": "counters", "t": 2.0, "values": {"n": 5}, "pid": 200,
             "seq": 1},
            {"ev": "counters", "t": 3.0, "values": {"n": 3}, "pid": 100,
             "seq": 0},
        ]
        assert summarize(events).counters["n"] == 8


class TestRender:
    def test_report_sections_golden(self, fixture_trace):
        text = render_report(fixture_trace, summarize(load_trace(fixture_trace)))
        assert "run: experiment=F8 quick=0 workers=2" in text
        assert "wall 10.000s" in text
        assert "peak RSS 155.5 MB" in text
        assert "processes: main pid 100 + 2 workers" in text
        assert "phase breakdown" in text
        # experiment row: count 1, total 10.000, 100% of wall.
        assert "experiment" in text and "100.0%" in text
        assert "faults.trial" in text
        assert "slowest spans" in text
        assert "worker pools:" in text
        assert "40.0%" in text  # utilization of the fixture pool
        assert "compiled.link" in text and "(90% hit)" in text
        assert "warnings: none" in text

    def test_warnings_listed(self, tmp_path):
        events = _fixture_events()
        events.append(
            {
                "ev": "warning", "t": 7.0, "kind": "degraded-mode",
                "message": "pool died", "data": {"workers": 2},
                "pid": MAIN_PID, "seq": 99,
            }
        )
        path = tmp_path / "warn.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        text = render_report(str(path), summarize(load_trace(str(path))))
        assert "warnings (1):" in text
        assert "[degraded-mode] pool died" in text

    def test_cache_hit_lines_math(self):
        lines = cache_hit_lines(
            {"x.cache_hit": 3, "x.cache_miss": 1, "unrelated": 5}
        )
        assert len(lines) == 1
        assert "3 hit / 1 miss (75% hit)" in lines[0]
        assert cache_hit_lines({"unrelated": 5}) == []


class TestCli:
    def test_obs_report_cli(self, fixture_trace, capsys):
        assert main(["obs", "report", fixture_trace]) == 0
        out = capsys.readouterr().out
        assert f"=== trace: {fixture_trace} ===" in out
        assert "phase breakdown" in out

    def test_obs_report_multiple_files(self, fixture_trace, tmp_path, capsys):
        import shutil

        second = str(tmp_path / "second.jsonl")
        shutil.copy(fixture_trace, second)
        assert main(["obs", "report", fixture_trace, second]) == 0
        out = capsys.readouterr().out
        assert out.count("=== trace:") == 2

    def test_obs_report_missing_file(self, capsys):
        assert main(["obs", "report", "/nonexistent/trace.jsonl"]) == 1
        assert "no such trace" in capsys.readouterr().out

    def test_obs_report_reports_schema_problems(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "mystery", "t": 0.0, "pid": 1, "seq": 0}\n')
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schema problems" in out

    def test_run_trace_flag_produces_valid_trace(self, tmp_path, capsys):
        out_dir = str(tmp_path)
        trace_path = os.path.join(out_dir, "f8.trace.jsonl")
        assert (
            main(["run", "F8", "--quick", "--out", out_dir, "--trace"]) == 0
        )
        capsys.readouterr()
        assert os.path.exists(trace_path)
        events = load_trace(trace_path)
        assert validate_trace(events) == []
        names = {e.get("name") for e in events if e.get("ev") == "span"}
        # The acceptance phases are all present in an F8 trace.
        assert {"experiment", "faults.plan", "faults.mask", "faults.trial",
                "faults.journal", "topology.compile"} <= names
        assert main(["obs", "report", trace_path]) == 0
        report = capsys.readouterr().out
        for needle in ("faults.plan", "faults.mask", "faults.trial",
                       "faults.journal", "peak RSS"):
            assert needle in report


class TestHarnessIntegration:
    def test_run_experiment_trace_argument(self, tmp_path):
        from repro.experiments import run_experiment

        path = str(tmp_path / "custom-name.jsonl")
        run_experiment(
            "F11", quick=True, out_dir=str(tmp_path), verbose=False, trace=path
        )
        events = load_trace(path)
        assert validate_trace(events) == []
        meta = events[0]
        assert meta["tags"]["experiment"] == "F11"

    def test_trace_env_variable(self, tmp_path, monkeypatch):
        from repro.experiments import run_experiment

        monkeypatch.setenv("REPRO_TRACE", "1")
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        default_path = tmp_path / "f11.trace.jsonl"
        assert default_path.exists()
        assert validate_trace(load_trace(str(default_path))) == []

    def test_no_trace_file_without_optin(self, tmp_path, monkeypatch):
        from repro.experiments import run_experiment

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        run_experiment("F11", quick=True, out_dir=str(tmp_path), verbose=False)
        assert not list(tmp_path.glob("*.trace.jsonl"))

    def test_runtimes_csv_phase_columns_populated(self, tmp_path):
        import csv

        from repro.experiments import run_experiment

        run_experiment("F8", quick=True, out_dir=str(tmp_path), verbose=False)
        with open(tmp_path / "runtimes.csv", newline="") as handle:
            (row,) = list(csv.DictReader(handle))
        assert row["experiment"] == "F8"
        # F8 runs fault sweeps: plan/trials/journal phases are non-zero
        # in the parent, and the peak-RSS cell is filled on Linux/POSIX.
        assert float(row["trials_s"]) > 0.0
        assert float(row["wall_time_s"]) >= float(row["trials_s"])
        if row["peak_rss_mb"]:
            assert float(row["peak_rss_mb"]) > 0.0

    def test_profile_flag_writes_prof(self, tmp_path):
        from repro.experiments import run_experiment

        run_experiment(
            "F11", quick=True, out_dir=str(tmp_path), verbose=False, profile=True
        )
        assert (tmp_path / "f11.prof").exists()
