"""Fault-tolerant routing: correctness under injected failures."""

import random

import pytest

from repro.core import fault_tolerant_route
from repro.core.address import AbcccParams, LevelSwitchAddress, ServerAddress
from repro.core.topology import build_abccc
from repro.routing.base import RoutingError
from repro.routing.shortest import bfs_distances


@pytest.fixture(scope="module")
def medium():
    params = AbcccParams(3, 2, 2)
    return params, build_abccc(params)


class TestHealthyNetwork:
    def test_matches_locality_route_length(self, medium):
        params, net = medium
        rng = random.Random(1)
        for _ in range(20):
            src, dst = rng.sample(net.servers, 2)
            result = fault_tolerant_route(params, net, src, dst, seed=2)
            assert not result.fallback_used
            assert result.detours == 0
            result.route.validate(net)
            # On a healthy network the greedy walk is a shortest path.
            assert result.link_hops == bfs_distances(net, src, targets={dst})[dst]

    def test_self_route(self, medium):
        params, net = medium
        server = net.servers[0]
        result = fault_tolerant_route(params, net, server, server)
        assert result.route.nodes == (server,)


class TestSingleFailures:
    def test_survives_any_single_level_switch_failure(self, medium):
        params, net = medium
        src, dst = net.servers[0], net.servers[-1]
        for switch in net.switches_by_role("level")[:20]:
            alive = net.subgraph_without(dead_nodes=[switch])
            result = fault_tolerant_route(params, alive, src, dst, seed=3)
            result.route.validate(alive)
            assert result.route.destination == dst

    def test_survives_single_crossbar_switch_failure(self, medium):
        params, net = medium
        src, dst = net.servers[0], net.servers[-1]
        for switch in net.switches_by_role("crossbar")[:15]:
            alive = net.subgraph_without(dead_nodes=[switch])
            result = fault_tolerant_route(params, alive, src, dst, seed=3)
            result.route.validate(alive)

    def test_survives_single_link_failure_on_route(self, medium):
        params, net = medium
        src, dst = net.servers[0], net.servers[-1]
        baseline = fault_tolerant_route(params, net, src, dst).route
        for u, v in list(baseline.edges()):
            alive = net.subgraph_without(dead_links=[(u, v)])
            result = fault_tolerant_route(params, alive, src, dst, seed=4)
            result.route.validate(alive)
            assert result.route.destination == dst


class TestEndpointFailures:
    def test_dead_source_rejected(self, medium):
        params, net = medium
        src, dst = net.servers[0], net.servers[1]
        alive = net.subgraph_without(dead_nodes=[src])
        with pytest.raises(RoutingError, match="source"):
            fault_tolerant_route(params, alive, src, dst)

    def test_dead_destination_rejected(self, medium):
        params, net = medium
        src, dst = net.servers[0], net.servers[1]
        alive = net.subgraph_without(dead_nodes=[dst])
        with pytest.raises(RoutingError, match="destination"):
            fault_tolerant_route(params, alive, src, dst)


class TestHeavyFailures:
    def test_agrees_with_bfs_reachability(self, medium):
        """Whenever BFS says a pair is connected, fault_tolerant_route
        (with fallback) must find a route; when disconnected it must raise."""
        params, net = medium
        rng = random.Random(9)
        dead = rng.sample(net.servers, 12) + rng.sample(net.switches, 8)
        alive = net.subgraph_without(dead_nodes=dead)
        servers = alive.servers
        for _ in range(40):
            src, dst = rng.sample(servers, 2)
            reachable = dst in bfs_distances(alive, src, targets={dst})
            if reachable:
                result = fault_tolerant_route(params, alive, src, dst, seed=11)
                result.route.validate(alive)
            else:
                with pytest.raises(RoutingError):
                    fault_tolerant_route(params, alive, src, dst, seed=11)

    def test_no_fallback_raises_when_greedy_stuck(self, medium):
        """With fallback disabled, an isolated destination raises."""
        params, net = medium
        src = net.servers[0]
        dst = net.servers[-1]
        # Kill every link of dst except nothing -> isolate it fully.
        alive = net.copy()
        for neighbor in list(alive.neighbors(dst)):
            alive.remove_link(dst, neighbor)
        with pytest.raises(RoutingError):
            fault_tolerant_route(params, alive, src, dst, allow_fallback=False)

    def test_detour_forced_and_counted(self, medium):
        """A pair differing in exactly one level, with that level's switch
        dead at the source crossbar: reordering cannot help (there is
        nothing to reorder), so the greedy router MUST detour — and must
        report it."""
        params, net = medium
        src = ServerAddress((0, 0, 0), 0)
        dst = ServerAddress((1, 0, 0), 0)  # only level 0 differs
        switch = LevelSwitchAddress.serving(0, src.digits)
        alive = net.subgraph_without(dead_nodes=[switch.name])
        result = fault_tolerant_route(params, alive, src.name, dst.name, seed=6)
        result.route.validate(alive)
        assert not result.fallback_used
        assert result.detours >= 1
        # The detour costs real hops: strictly longer than the healthy route.
        healthy = fault_tolerant_route(params, net, src.name, dst.name).route
        assert result.route.link_hops > healthy.link_hops


class TestBCubeDegenerateCase:
    def test_c1_routing_without_crossbar_switches(self):
        params = AbcccParams(3, 1, 3)  # c = 1
        net = build_abccc(params)
        src, dst = net.servers[0], net.servers[-1]
        result = fault_tolerant_route(params, net, src, dst)
        result.route.validate(net)
        # Fail a level switch on the route and retry.
        switch = next(n for n in result.route.nodes if n.startswith("l"))
        alive = net.subgraph_without(dead_nodes=[switch])
        rerouted = fault_tolerant_route(params, alive, src, dst, seed=1)
        rerouted.route.validate(alive)


class TestDeterminism:
    """Same seed => identical walk; the seed only feeds detour draws."""

    def _heavy_alive(self, net):
        rng = random.Random(4)
        dead = rng.sample(net.servers, 10) + rng.sample(net.switches, 10)
        return net.subgraph_without(dead_nodes=dead)

    def test_same_seed_same_route_and_detours(self, medium):
        params, net = medium
        alive = self._heavy_alive(net)
        rng = random.Random(17)
        servers = alive.servers
        for _ in range(25):
            src, dst = rng.sample(servers, 2)
            try:
                first = fault_tolerant_route(params, alive, src, dst, seed=21)
            except RoutingError:
                continue
            second = fault_tolerant_route(params, alive, src, dst, seed=21)
            assert first.route.nodes == second.route.nodes
            assert first.detours == second.detours
            assert first.fallback_used == second.fallback_used

    def test_distinct_seeds_exercise_detour_branch(self, medium):
        """Find a detouring pair, then show the detour choice is seed-
        driven: across seeds the walks must not all be identical."""
        params, net = medium
        alive = self._heavy_alive(net)
        rng = random.Random(3)
        servers = alive.servers
        for _ in range(200):
            src, dst = rng.sample(servers, 2)
            try:
                base = fault_tolerant_route(params, alive, src, dst, seed=0)
            except RoutingError:
                continue
            if base.fallback_used or base.detours == 0:
                continue
            walks = set()
            for seed in range(8):
                result = fault_tolerant_route(params, alive, src, dst, seed=seed)
                result.route.validate(alive)
                walks.add(result.route.nodes)
            assert len(walks) > 1, "detour draws ignored the seed"
            return
        pytest.skip("no greedy-detour pair found on this instance")

    def test_seed_unused_without_detours(self, medium):
        """On a healthy network the seed must be irrelevant."""
        params, net = medium
        rng = random.Random(8)
        for _ in range(10):
            src, dst = rng.sample(net.servers, 2)
            routes = {
                fault_tolerant_route(params, net, src, dst, seed=s).route.nodes
                for s in range(3)
            }
            assert len(routes) == 1
