"""run_traffic orchestration: journaling, determinism, pool parity."""

import numpy as np
import pytest

from repro.core import AbcccSpec
from repro.faults.journal import TrialJournal
from repro.topology.fastbuild import fast_compiled
from repro.traffic import COLUMNS, TrafficTrialSpec, run_traffic, run_trial
from repro.traffic.run import trial_key


@pytest.fixture(scope="module")
def graph():
    return fast_compiled(AbcccSpec(3, 2, 2))


def _rows(table):
    return table.rows


class TestRunTrial:
    def test_row_has_full_schema(self, graph):
        spec = TrafficTrialSpec(
            pattern="permutation", num_servers=graph.num_servers, seed=3, trial=0
        )
        row = run_trial(graph, spec)
        assert set(row) == set(COLUMNS)
        assert row["flows"] == graph.num_servers
        assert row["unreachable"] == 0
        assert row["agg_throughput"] > 0
        assert row["dead_nodes"] == 0 and row["dead_links"] == 0
        # fct disabled: summary columns pinned at zero
        assert row["mean_fct"] == 0.0

    def test_fct_columns_populated_when_asked(self, graph):
        spec = TrafficTrialSpec(
            pattern="incast", num_servers=graph.num_servers, seed=3, trial=0, fct=True
        )
        row = run_trial(graph, spec)
        assert 0.0 < row["p50_fct"] <= row["p99_fct"] <= row["max_fct"]

    def test_degraded_trial_reports_dead_counts(self, graph):
        spec = TrafficTrialSpec(
            pattern="permutation",
            num_servers=graph.num_servers,
            seed=3,
            trial=0,
            fault_fractions=(("switch_fraction", 0.05),),
            fault_seed=7,
        )
        row = run_trial(graph, spec)
        assert row["dead_nodes"] > 0
        healthy = run_trial(
            graph,
            TrafficTrialSpec(
                pattern="permutation", num_servers=graph.num_servers, seed=3, trial=0
            ),
        )
        # dead switches cannot raise aggregate throughput
        assert row["agg_throughput"] <= healthy["agg_throughput"] + 1e-9

    def test_trial_key_is_deterministic_and_distinct(self, graph):
        base = TrafficTrialSpec(
            pattern="uniform", num_servers=graph.num_servers, seed=1, trial=0
        )
        assert trial_key("lab", base) == trial_key("lab", base)
        other = TrafficTrialSpec(
            pattern="uniform", num_servers=graph.num_servers, seed=1, trial=1
        )
        assert trial_key("lab", base) != trial_key("lab", other)
        assert trial_key("lab", base) != trial_key("lab2", base)


class TestRunTraffic:
    def test_table_shape_and_determinism(self, graph):
        a = run_traffic(graph, "t", "permutation", trials=2, seed=5, workers=1)
        b = run_traffic(graph, "t", "permutation", trials=2, seed=5, workers=1)
        assert a.columns == COLUMNS
        assert len(_rows(a)) == 2
        for ra, rb in zip(_rows(a), _rows(b)):
            for col in COLUMNS:
                if col == "elapsed_s":
                    continue
                assert ra[col] == rb[col], col

    def test_trials_must_be_positive(self, graph):
        with pytest.raises(ValueError, match="trials"):
            run_traffic(graph, "t", "permutation", trials=0)

    def test_journal_replay_skips_recompute(self, graph, tmp_path):
        path = str(tmp_path / "traffic.journal.jsonl")
        journal = TrialJournal(path)
        first = run_traffic(
            graph, "t", "incast", trials=3, seed=2, workers=1, journal=journal
        )
        journal.close()
        replay_journal = TrialJournal(path)
        assert len(replay_journal) == 3
        second = run_traffic(
            graph, "t", "incast", trials=3, seed=2, workers=1, journal=replay_journal
        )
        replay_journal.close()
        assert first.render() == second.render()

    def test_journal_key_includes_faults(self, graph, tmp_path):
        path = str(tmp_path / "traffic.journal.jsonl")
        journal = TrialJournal(path)
        run_traffic(graph, "t", "permutation", trials=1, seed=2, journal=journal, workers=1)
        run_traffic(
            graph,
            "t",
            "permutation",
            trials=1,
            seed=2,
            journal=journal,
            workers=1,
            fault_fractions={"link_fraction": 0.02},
        )
        journal.close()
        assert len(TrialJournal(path)) == 2  # healthy and degraded are distinct

    def test_pool_matches_sequential(self, graph):
        seq = run_traffic(graph, "t", "uniform", trials=4, seed=9, workers=1)
        par = run_traffic(graph, "t", "uniform", trials=4, seed=9, workers=2)
        for ra, rb in zip(_rows(seq), _rows(par)):
            for col in COLUMNS:
                if col == "elapsed_s":
                    continue
                assert ra[col] == rb[col], col

    def test_degraded_note_rendered(self, graph):
        table = run_traffic(
            graph,
            "t",
            "permutation",
            trials=1,
            seed=0,
            workers=1,
            fault_fractions={"server_fraction": 0.01},
        )
        assert any("degraded" in note for note in table.notes)
        assert _rows(table)[0]["unreachable"] > 0
