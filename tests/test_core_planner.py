"""Design-planner tests: feasibility filters, ranking, Pareto flags."""

import pytest

from repro.core.planner import Candidate, Requirements, best, plan


class TestRequirements:
    def test_validation(self):
        with pytest.raises(ValueError):
            Requirements(min_servers=0)
        with pytest.raises(ValueError):
            Requirements(min_servers=10, max_servers=5)
        with pytest.raises(ValueError):
            Requirements(max_nic_ports=1)
        with pytest.raises(ValueError):
            Requirements(expansion_headroom=-1)


class TestFeasibility:
    def test_scale_window_respected(self):
        req = Requirements(min_servers=500, max_servers=2000, max_nic_ports=3)
        for candidate in plan(req):
            assert 500 <= candidate.servers <= 2000

    def test_nic_budget_respected(self):
        req = Requirements(min_servers=50, max_servers=5000, max_nic_ports=2)
        for candidate in plan(req):
            assert candidate.spec.s == 2

    def test_diameter_ceiling(self):
        req = Requirements(
            min_servers=100, max_servers=5000, max_nic_ports=5, max_diameter=6
        )
        for candidate in plan(req):
            assert candidate.diameter <= 6

    def test_bisection_floor(self):
        req = Requirements(
            min_servers=100,
            max_servers=5000,
            max_nic_ports=6,
            min_bisection_per_server=0.25,
        )
        candidates = plan(req)
        assert candidates
        for candidate in candidates:
            assert candidate.bisection_per_server >= 0.25

    def test_expansion_headroom_excludes_boundary_configs(self):
        """With 2 growth steps required, s=2 configs where c would outgrow
        n are rejected."""
        base = Requirements(min_servers=100, max_servers=10**6, max_nic_ports=2)
        with_headroom = Requirements(
            min_servers=100,
            max_servers=10**6,
            max_nic_ports=2,
            expansion_headroom=2,
        )
        allowed = {c.label for c in plan(base)}
        restricted = {c.label for c in plan(with_headroom)}
        assert restricted < allowed
        # Every surviving config really can grow twice purely.
        for candidate in plan(with_headroom):
            n, k = candidate.spec.n, candidate.spec.k
            assert (k + 2 + 1) <= n * (candidate.spec.s - 1)

    def test_infeasible_returns_empty(self):
        req = Requirements(
            min_servers=10**9, max_servers=2 * 10**9, max_nic_ports=2, switch_radix=4
        )
        assert plan(req, max_k=3) == []


class TestRankingAndPareto:
    def test_sorted_by_cost(self):
        req = Requirements(min_servers=100, max_servers=3000, max_nic_ports=4)
        candidates = plan(req)
        costs = [c.capex_per_server for c in candidates]
        assert costs == sorted(costs)

    def test_pareto_flags_consistent(self):
        req = Requirements(min_servers=100, max_servers=3000, max_nic_ports=4)
        candidates = plan(req)
        frontier = [c for c in candidates if c.pareto]
        assert frontier
        # No frontier member may dominate another frontier member.
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    a.diameter <= b.diameter
                    and (a.bisection_per_server or 0) >= (b.bisection_per_server or 0)
                    and a.capex_per_server <= b.capex_per_server
                    and (
                        a.diameter < b.diameter
                        or (a.bisection_per_server or 0) > (b.bisection_per_server or 0)
                        or a.capex_per_server < b.capex_per_server
                    )
                )
                assert not dominates


class TestBest:
    REQ = Requirements(min_servers=200, max_servers=5000, max_nic_ports=5)

    def test_cost_objective(self):
        winner = best(self.REQ, "cost")
        assert winner is not None
        assert winner.capex_per_server == min(
            c.capex_per_server for c in plan(self.REQ)
        )

    def test_latency_objective(self):
        winner = best(self.REQ, "latency")
        assert winner.diameter == min(c.diameter for c in plan(self.REQ))

    def test_bandwidth_objective(self):
        winner = best(self.REQ, "bandwidth")
        assert winner.bisection_per_server == max(
            (c.bisection_per_server or 0) for c in plan(self.REQ)
        )

    def test_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            best(self.REQ, "vibes")

    def test_none_when_infeasible(self):
        req = Requirements(
            min_servers=10**9, max_servers=2 * 10**9, max_nic_ports=2, switch_radix=4
        )
        assert best(req) is None
