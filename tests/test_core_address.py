"""ABCCC parameter and addressing tests, incl. hypothesis round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import (
    AbcccParams,
    AddressError,
    CrossbarSwitchAddress,
    LevelSwitchAddress,
    ServerAddress,
)

params_strategy = st.builds(
    AbcccParams,
    n=st.integers(min_value=2, max_value=6),
    k=st.integers(min_value=0, max_value=5),
    s=st.integers(min_value=2, max_value=8),
)


class TestParamsValidation:
    @pytest.mark.parametrize("n,k,s", [(1, 0, 2), (0, 1, 2), (2, -1, 2), (2, 0, 1)])
    def test_bad_parameters(self, n, k, s):
        with pytest.raises(AddressError):
            AbcccParams(n, k, s)

    def test_crossbar_size(self):
        assert AbcccParams(4, 3, 2).crossbar_size == 4  # ceil(4/1)
        assert AbcccParams(4, 3, 3).crossbar_size == 2  # ceil(4/2)
        assert AbcccParams(4, 3, 4).crossbar_size == 2  # ceil(4/3)
        assert AbcccParams(4, 3, 5).crossbar_size == 1  # ceil(4/4)

    def test_crossbar_switch_presence(self):
        assert AbcccParams(4, 2, 2).has_crossbar_switch
        assert not AbcccParams(4, 2, 4).has_crossbar_switch

    def test_bccc_special_case(self):
        params = AbcccParams(4, 3, 2)
        assert params.crossbar_size == params.levels

    def test_bcube_special_case(self):
        params = AbcccParams(4, 3, 5)
        assert params.crossbar_size == 1


class TestOwnership:
    def test_owner_of_contiguous_blocks(self):
        params = AbcccParams(4, 3, 3)  # s-1 = 2 levels per server
        assert [params.owner_of(i) for i in range(4)] == [0, 0, 1, 1]

    def test_levels_of_inverts_owner_of(self):
        params = AbcccParams(3, 4, 3)
        for j in range(params.crossbar_size):
            for level in params.levels_of(j):
                assert params.owner_of(level) == j

    def test_every_level_owned_exactly_once(self):
        for s in range(2, 7):
            params = AbcccParams(3, 4, s)
            owned = [
                level
                for j in range(params.crossbar_size)
                for level in params.levels_of(j)
            ]
            assert sorted(owned) == list(range(params.levels))

    def test_spare_ports(self):
        params = AbcccParams(4, 2, 3)  # 3 levels, 2 per server: last has 1
        assert params.spare_level_ports(0) == 0
        assert params.spare_level_ports(1) == 1

    def test_out_of_range_level(self):
        with pytest.raises(AddressError, match="level"):
            AbcccParams(3, 2, 2).owner_of(3)

    def test_out_of_range_index(self):
        with pytest.raises(AddressError, match="index"):
            AbcccParams(3, 2, 2).levels_of(5)


class TestDigitsAndRanks:
    def test_check_digits_length(self):
        with pytest.raises(AddressError, match="digits"):
            AbcccParams(3, 2, 2).check_digits((0, 1))

    def test_check_digits_range(self):
        with pytest.raises(AddressError, match="out of range"):
            AbcccParams(3, 2, 2).check_digits((0, 3, 1))

    @given(params_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_crossbar_rank_roundtrip(self, params, data):
        rank = data.draw(st.integers(min_value=0, max_value=params.num_crossbars - 1))
        assert params.crossbar_rank(params.crossbar_digits(rank)) == rank

    def test_iter_crossbars_complete(self):
        params = AbcccParams(3, 1, 2)
        digits = list(params.iter_crossbars())
        assert len(digits) == 9
        assert len(set(digits)) == 9

    @given(params_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_server_rank_roundtrip(self, params, data):
        total = params.num_crossbars * params.crossbar_size
        rank = data.draw(st.integers(min_value=0, max_value=total - 1))
        addr = ServerAddress.from_rank(params, rank)
        assert addr.rank(params) == rank

    def test_server_rank_out_of_range(self):
        params = AbcccParams(2, 1, 2)
        with pytest.raises(AddressError):
            ServerAddress.from_rank(params, 10**6)


class TestNameCodecs:
    @given(params_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_server_name_roundtrip(self, params, data):
        rank = data.draw(
            st.integers(
                min_value=0,
                max_value=params.num_crossbars * params.crossbar_size - 1,
            )
        )
        addr = ServerAddress.from_rank(params, rank)
        assert ServerAddress.parse(addr.name) == addr

    def test_server_name_format_msb_first(self):
        addr = ServerAddress((1, 0, 2), 3)  # level-indexed: x0=1, x1=0, x2=2
        assert addr.name == "s2.0.1/3"

    def test_crossbar_switch_roundtrip(self):
        addr = CrossbarSwitchAddress((2, 0, 1))
        assert CrossbarSwitchAddress.parse(addr.name) == addr

    def test_level_switch_roundtrip(self):
        addr = LevelSwitchAddress(1, (2, 0))
        parsed = LevelSwitchAddress.parse(addr.name)
        assert parsed == addr

    def test_level_switch_member_digits(self):
        addr = LevelSwitchAddress(1, (2, 0))  # digits (2, *, 0)
        assert addr.member_digits(7) == (2, 7, 0)

    def test_level_switch_serving(self):
        addr = LevelSwitchAddress.serving(1, (2, 5, 0))
        assert addr.level == 1
        assert addr.rest == (2, 0)
        assert addr.member_digits(5) == (2, 5, 0)

    @pytest.mark.parametrize(
        "name", ["x1.2/0", "s1.2", "sab/0", "s1.2/x", "c", "l1:1.2", "l1:*.x"]
    )
    def test_malformed_names_rejected(self, name):
        with pytest.raises(AddressError):
            if name.startswith("s") or not name[0] in "cl":
                ServerAddress.parse(name)
            elif name.startswith("c"):
                CrossbarSwitchAddress.parse(name)
            else:
                LevelSwitchAddress.parse(name)

    def test_ordering_is_total(self):
        a = ServerAddress((0, 0), 0)
        b = ServerAddress((0, 0), 1)
        c = ServerAddress((1, 0), 0)
        assert a < b < c
