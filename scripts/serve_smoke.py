"""CI smoke for the serve daemon: full lifecycle against a real process.

Starts ``repro serve`` as a subprocess, polls ``/healthz`` until ready,
fires a burst of route + what-if queries (including one that must be
shed under a deliberately tiny queue bound), scrapes ``/metrics``
mid-burst (the exposition must stay well-formed while workers churn)
and again after the burst (latency-histogram counts must agree with
``/stats``), then SIGTERMs the daemon and asserts a clean drain: exit
code 0, the drain message on stdout, no traceback on stderr, and zero
leaked shared-memory segments.

Run from the repo root:  python scripts/serve_smoke.py
"""

import glob
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

from repro.obs.metrics import exposition_problems  # noqa: E402
from repro.serve import ServeClient, ServeError  # noqa: E402

SPAWN_TIMEOUT_S = 120


def shm_segments():
    if not os.path.isdir("/dev/shm"):
        return set()
    return set(glob.glob("/dev/shm/psm_*"))


def scrape_metrics(port: int):
    """GET /metrics raw (the exposition is text, not the JSON envelope)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        return response.status, response.getheader("Content-Type") or "", body
    finally:
        conn.close()


def assert_exposition_ok(body: str, when: str) -> None:
    problems = exposition_problems(body)
    assert not problems, f"/metrics malformed {when}: {problems}"


def exposition_series_count(body: str, series: str) -> float:
    """Sum of every ``series{...} value`` sample in the exposition."""
    total = 0.0
    pattern = re.compile(r"^" + re.escape(series) + r"(?:\{[^}]*\})? (\S+)$")
    for line in body.splitlines():
        match = pattern.match(line)
        if match:
            total += float(match.group(1))
    return total


def main() -> int:
    before = shm_segments()
    ready_file = os.path.join(ROOT, "serve-smoke-ready.json")
    trace_file = os.path.join(ROOT, "serve-smoke.trace.jsonl")
    for stale in (ready_file, trace_file):
        if os.path.exists(stale):
            os.unlink(stale)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "abccc",
            "-p", "n=4", "-p", "k=2", "-p", "s=2",
            "--workers", "2",
            "--queue", "2",  # tiny on purpose: the burst must shed
            "--port", "0",
            "--ready-file", ready_file,
            "--trace", trace_file,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )

    deadline = time.monotonic() + SPAWN_TIMEOUT_S
    while time.monotonic() < deadline and not os.path.exists(ready_file):
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise SystemExit(f"daemon died during startup:\n{out}\n{err}")
        time.sleep(0.1)
    assert os.path.exists(ready_file), "daemon never wrote the ready file"
    with open(ready_file, encoding="utf-8") as handle:
        port = json.load(handle)["port"]
    print(f"daemon ready on port {port}")

    client = ServeClient(port=port, retries=4, backoff_base_s=0.05, seed=0)
    state = client.health()
    assert state["status"] == "serving", state
    assert client.ready()

    # -- correctness burst ---------------------------------------------
    route = client.route("0", "100")
    assert route["status"] == "ok" and route["reachable"], route
    assert len(route["path"]) == route["link_hops"] + 1
    detour = client.route("0", "100", avoid=[route["path"][1]])
    assert route["path"][1] not in detour["path"], detour
    whatif = client.whatif(dead_switches=[route["path"][1]], sample_pairs=100)
    assert whatif["status"] in ("ok", "degraded"), whatif
    print(
        f"route {route['link_hops']} hops; what-if: "
        f"{whatif['alive_servers']}/{whatif['num_servers']} alive, "
        f"lcf {whatif['largest_component_fraction']}"
    )

    # -- /metrics after the correctness burst --------------------------
    status, ctype, body = scrape_metrics(port)
    assert status == 200, (status, body[:200])
    assert ctype.startswith("text/plain"), ctype
    assert_exposition_ok(body, "after correctness burst")
    for series in (
        "repro_serve_request_latency_seconds_bucket",
        "repro_serve_queue_wait_seconds_count",
        "repro_serve_requests_total",
        "repro_serve_worker_alive",
    ):
        assert series in body, f"core series {series} missing from /metrics"
    assert 'endpoint="route"' in body and 'outcome="ok"' in body, body[:400]
    print("/metrics: well-formed, core series present")

    # -- overload burst: the tiny queue must shed, never hang ----------
    outcomes = []

    def hammer(slot: int) -> None:
        c = ServeClient(port=port, retries=0, timeout_s=60, seed=slot)
        try:
            c.whatif(
                dead_servers=[f"s0.0.{slot}/0"],
                sample_pairs=100_000,  # max-cost request: keeps workers busy
            )
            outcomes.append("ok")
        except ServeError as error:
            outcomes.append(error.code)
        finally:
            c.close()

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(12)]
    for t in threads:
        t.start()
    # mid-burst scrape: the exposition must stay well-formed while the
    # queue sheds and workers churn (the point of live telemetry).
    status, _, body = scrape_metrics(port)
    assert status == 200, status
    assert_exposition_ok(body, "mid-burst")
    print("/metrics: well-formed mid-burst")
    for t in threads:
        t.join(timeout=SPAWN_TIMEOUT_S)
        assert not t.is_alive(), "a burst request hung"
    shed = outcomes.count("overload")
    print(f"burst outcomes: {sorted(outcomes)} ({shed} shed)")
    assert shed >= 1, f"tiny queue never shed: {outcomes}"
    assert "internal" not in outcomes, outcomes

    stats = client.stats()
    assert stats["counters"]["shed_overload"] >= 1, stats["counters"]

    # -- /metrics agrees with /stats after the burst settles -----------
    status, _, body = scrape_metrics(port)
    assert status == 200, status
    assert_exposition_ok(body, "after burst")
    exposed = exposition_series_count(body, "repro_serve_request_latency_seconds_count")
    snapshot = stats["metrics"]
    recorded = sum(
        h["count"]
        for h in snapshot["histograms"]
        if h["name"] == "serve.request.latency_seconds"
    )
    assert exposed == recorded, (exposed, recorded)
    assert 'outcome="shed"' in body, "shed outcome series missing"
    memory = stats.get("memory") or {}
    assert memory.get("pool_total_mb"), memory
    print(
        f"/metrics vs /stats: {int(exposed)} requests in both; "
        f"pool RSS {memory['pool_total_mb']} MB"
    )
    client.close()

    # -- SIGTERM drain --------------------------------------------------
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=SPAWN_TIMEOUT_S)
    assert proc.returncode == 0, f"exit {proc.returncode}:\n{err}"
    assert "drained and stopped" in out, out
    assert "Traceback" not in err, err
    leaked = shm_segments() - before
    assert not leaked, f"leaked shm segments: {leaked}"
    os.unlink(ready_file)
    assert os.path.exists(trace_file), "trace file missing"
    print("serve smoke: OK (clean drain, no leaked segments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
